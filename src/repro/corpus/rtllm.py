"""Hand-crafted evaluation designs (the reproduction of SVA-Eval-Human).

The paper's human split contains 38 cases derived from the RTLLM benchmark:
real, human-written RTL with manually planted bugs.  This module provides the
equivalent: a set of designs written by hand in a style deliberately
different from the synthetic generator (different naming, different
formatting, occasional intermediate signals), each with several hand-planted
bugs described as line replacements.

Each (design, bug) pair becomes one evaluation case after the benchmark
builder verifies that the bug really triggers an assertion failure -- the
same validation step the machine-generated cases go through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.source import SourceFile


@dataclass(frozen=True)
class HumanBug:
    """One hand-planted bug: replace the line matching ``golden_fragment``."""

    golden_fragment: str
    buggy_line: str
    note: str
    edit_kind: str  # "op" | "value" | "var" | "cond" | "noncond"


@dataclass
class HumanDesign:
    """One hand-written design with its spec and planted bugs."""

    name: str
    spec: str
    source: str
    bugs: list[HumanBug] = field(default_factory=list)


@dataclass(frozen=True)
class HumanBugCase:
    """A fully materialised human-crafted evaluation case."""

    design_name: str
    spec: str
    golden_source: str
    buggy_source: str
    buggy_line_number: int
    golden_line: str
    buggy_line: str
    note: str
    edit_kind: str


def _materialise(design: HumanDesign) -> list[HumanBugCase]:
    cases: list[HumanBugCase] = []
    source_file = SourceFile(design.source)
    for bug in design.bugs:
        line_number = source_file.find_line(bug.golden_fragment)
        if line_number == 0:
            raise ValueError(
                f"design '{design.name}': bug fragment not found: {bug.golden_fragment!r}"
            )
        golden_line = source_file.line(line_number)
        buggy_source = source_file.with_line_replaced(line_number, bug.buggy_line).text
        cases.append(
            HumanBugCase(
                design_name=design.name,
                spec=design.spec,
                golden_source=design.source,
                buggy_source=buggy_source,
                buggy_line_number=line_number,
                golden_line=golden_line,
                buggy_line=bug.buggy_line,
                note=bug.note,
                edit_kind=bug.edit_kind,
            )
        )
    return cases


# --------------------------------------------------------------------------- #
# the hand-written designs
# --------------------------------------------------------------------------- #


def _design_adder_pipe() -> HumanDesign:
    source = """\
module adder_pipe_16 (
    input  wire        clk,
    input  wire        rst_n,
    input  wire        en,
    input  wire [15:0] opa,
    input  wire [15:0] opb,
    output reg  [16:0] sum,
    output reg         sum_valid
);
    reg [15:0] opa_r;
    reg [15:0] opb_r;
    reg        stage_valid;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            opa_r <= 16'd0;
            opb_r <= 16'd0;
            stage_valid <= 1'b0;
        end
        else begin
            opa_r <= opa;
            opb_r <= opb;
            stage_valid <= en;
        end
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sum <= 17'd0;
            sum_valid <= 1'b0;
        end
        else begin
            sum <= {1'b0, opa_r} + {1'b0, opb_r};
            sum_valid <= stage_valid;
        end
    end

    property p_sum_correct;
        @(posedge clk) disable iff (!rst_n)
        stage_valid |=> sum == ({1'b0, $past(opa_r)} + {1'b0, $past(opb_r)});
    endproperty
    a_sum_correct: assert property (p_sum_correct)
        else $error("registered sum must equal the sum of the registered operands");

    property p_valid_pipe;
        @(posedge clk) disable iff (!rst_n)
        en |=> ##1 sum_valid;
    endproperty
    a_valid_pipe: assert property (p_valid_pipe)
        else $error("sum_valid must follow en by two cycles");
endmodule
"""
    spec = (
        "The module 'adder_pipe_16' is a two-stage pipelined 16-bit adder.\n\n"
        "Ports:\n"
        "- clk (input, 1 bit): clock, rising edge active\n"
        "- rst_n (input, 1 bit): asynchronous active-low reset\n"
        "- en (input, 1 bit): input enable / valid\n"
        "- opa, opb (input, 16 bits): operands\n"
        "- sum (output, 17 bits): registered sum including the carry bit\n"
        "- sum_valid (output, 1 bit): high when sum corresponds to a cycle where en was high\n\n"
        "Function:\n"
        "- Stage 1 registers the operands and the enable.\n"
        "- Stage 2 adds the registered operands into a 17-bit sum and pipelines the valid bit.\n"
        "- sum_valid therefore follows en with a latency of two clock cycles."
    )
    bugs = [
        HumanBug(
            golden_fragment="sum <= {1'b0, opa_r} + {1'b0, opb_r};",
            buggy_line="sum <= {1'b0, opa_r} - {1'b0, opb_r};",
            note="subtraction used instead of addition in the second pipeline stage",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="sum_valid <= stage_valid;",
            buggy_line="sum_valid <= en;",
            note="valid bit skips the first pipeline stage, breaking the two-cycle latency",
            edit_kind="var",
        ),
        HumanBug(
            golden_fragment="opb_r <= opb;",
            buggy_line="opb_r <= opa;",
            note="second operand register captures the wrong operand",
            edit_kind="var",
        ),
        HumanBug(
            golden_fragment="stage_valid <= en;",
            buggy_line="stage_valid <= 1'b1;",
            note="stage valid stuck at one regardless of en",
            edit_kind="value",
        ),
    ]
    return HumanDesign(name="adder_pipe_16", spec=spec, source=source, bugs=bugs)


def _design_counter_12() -> HumanDesign:
    source = """\
module counter_12 (
    input  wire       clk,
    input  wire       rst_n,
    input  wire       valid_count,
    output reg  [3:0] out
);
    wire wrap;
    assign wrap = (out == 4'd11);

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            out <= 4'd0;
        end
        else if (valid_count) begin
            if (wrap)
                out <= 4'd0;
            else
                out <= out + 4'd1;
        end
    end

    property p_wrap_to_zero;
        @(posedge clk) disable iff (!rst_n)
        (valid_count && out == 4'd11) |=> out == 4'd0;
    endproperty
    a_wrap_to_zero: assert property (p_wrap_to_zero)
        else $error("the counter must wrap to zero after reaching 11");

    property p_stay_in_range;
        @(posedge clk) disable iff (!rst_n)
        out <= 4'd11;
    endproperty
    a_stay_in_range: assert property (p_stay_in_range)
        else $error("the counter must never exceed 11");

    property p_hold_when_idle;
        @(posedge clk) disable iff (!rst_n)
        !valid_count |=> out == $past(out);
    endproperty
    a_hold_when_idle: assert property (p_hold_when_idle)
        else $error("the counter must hold its value when valid_count is low");
endmodule
"""
    spec = (
        "The module 'counter_12' is a modulo-12 counter.\n\n"
        "Ports:\n"
        "- clk (input): clock\n"
        "- rst_n (input): asynchronous active-low reset\n"
        "- valid_count (input): counting enable\n"
        "- out (output, 4 bits): counter value, range 0 to 11\n\n"
        "Function:\n"
        "- When valid_count is high the counter increments each cycle.\n"
        "- After reaching 11 the counter wraps to 0.\n"
        "- When valid_count is low the counter holds its value.\n"
        "- The value must always stay in the range 0 to 11."
    )
    bugs = [
        HumanBug(
            golden_fragment="assign wrap = (out == 4'd11);",
            buggy_line="assign wrap = (out == 4'd12);",
            note="wrap comparison uses 12, letting the counter leave its legal range",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="else if (valid_count) begin",
            buggy_line="else if (!valid_count) begin",
            note="enable condition inverted, the counter runs when it should hold",
            edit_kind="cond",
        ),
        HumanBug(
            golden_fragment="out <= out + 4'd1;",
            buggy_line="out <= out + 4'd2;",
            note="the counter increments by two and skips the wrap value",
            edit_kind="value",
        ),
    ]
    return HumanDesign(name="counter_12", spec=spec, source=source, bugs=bugs)


def _design_pulse_detect() -> HumanDesign:
    source = """\
module pulse_detect (
    input  wire clk,
    input  wire rst_n,
    input  wire data_in,
    output reg  data_out
);
    reg [1:0] state;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            state <= 2'd0;
            data_out <= 1'b0;
        end
        else begin
            data_out <= 1'b0;
            case (state)
                2'd0: begin
                    if (data_in)
                        state <= 2'd1;
                end
                2'd1: begin
                    if (!data_in) begin
                        state <= 2'd0;
                        data_out <= 1'b1;
                    end
                end
                default: state <= 2'd0;
            endcase
        end
    end

    property p_pulse_end;
        @(posedge clk) disable iff (!rst_n)
        (state == 2'd1 && !data_in) |=> data_out;
    endproperty
    a_pulse_end: assert property (p_pulse_end)
        else $error("data_out must pulse when a 1->0 transition completes a pulse");

    property p_no_false_pulse;
        @(posedge clk) disable iff (!rst_n)
        (state == 2'd0 && !data_in) |=> !data_out;
    endproperty
    a_no_false_pulse: assert property (p_no_false_pulse)
        else $error("data_out must stay low while no pulse is in progress");
endmodule
"""
    spec = (
        "The module 'pulse_detect' detects complete 0-1-0 pulses on data_in.\n\n"
        "Ports:\n"
        "- clk (input): clock\n- rst_n (input): asynchronous active-low reset\n"
        "- data_in (input): monitored serial input\n"
        "- data_out (output): one-cycle pulse when a complete pulse has been observed\n\n"
        "Function:\n"
        "- The FSM waits for data_in to go high (start of a pulse) and then for it to return "
        "to zero (end of the pulse).\n"
        "- When the falling edge that completes the pulse is seen, data_out is asserted for one cycle.\n"
        "- data_out stays low in all other cycles."
    )
    bugs = [
        HumanBug(
            golden_fragment="if (!data_in) begin",
            buggy_line="if (data_in) begin",
            note="the falling-edge condition that completes a pulse is inverted",
            edit_kind="cond",
        ),
        HumanBug(
            golden_fragment="data_out <= 1'b1;",
            buggy_line="data_out <= 1'b0;",
            note="the completion pulse is never driven high",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="if (data_in)",
            buggy_line="if (data_out)",
            note="the pulse-start condition looks at the wrong signal",
            edit_kind="var",
        ),
    ]
    return HumanDesign(name="pulse_detect", spec=spec, source=source, bugs=bugs)


def _design_serial2parallel() -> HumanDesign:
    source = """\
module serial2parallel (
    input  wire       clk,
    input  wire       rst_n,
    input  wire       din_serial,
    input  wire       din_valid,
    output reg  [7:0] dout_parallel,
    output reg        dout_valid
);
    reg [3:0] cnt;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            cnt <= 4'd0;
        else if (din_valid) begin
            if (cnt == 4'd7)
                cnt <= 4'd0;
            else
                cnt <= cnt + 4'd1;
        end
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            dout_parallel <= 8'd0;
        else if (din_valid)
            dout_parallel <= {dout_parallel[6:0], din_serial};
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            dout_valid <= 1'b0;
        else if (din_valid && (cnt == 4'd7))
            dout_valid <= 1'b1;
        else
            dout_valid <= 1'b0;
    end

    property p_dout_valid_timing;
        @(posedge clk) disable iff (!rst_n)
        (din_valid && cnt == 4'd7) |=> dout_valid;
    endproperty
    a_dout_valid_timing: assert property (p_dout_valid_timing)
        else $error("dout_valid must rise after the eighth serial bit");

    property p_no_early_valid;
        @(posedge clk) disable iff (!rst_n)
        (din_valid && cnt != 4'd7) |=> !dout_valid;
    endproperty
    a_no_early_valid: assert property (p_no_early_valid)
        else $error("dout_valid must stay low before the eighth serial bit");

    property p_shift_in;
        @(posedge clk) disable iff (!rst_n)
        din_valid |=> dout_parallel[0] == $past(din_serial);
    endproperty
    a_shift_in: assert property (p_shift_in)
        else $error("the newest serial bit must appear at bit 0 of the parallel word");
endmodule
"""
    spec = (
        "The module 'serial2parallel' converts a serial bit stream into 8-bit words.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- din_serial (input): serial data bit\n"
        "- din_valid (input): serial bit valid\n"
        "- dout_parallel (output, 8 bits): assembled word, MSB received first\n"
        "- dout_valid (output): high for one cycle after every 8th valid bit\n\n"
        "Function:\n"
        "- Valid serial bits are shifted into the parallel register, newest bit at position 0.\n"
        "- A 4-bit counter counts the bits of the current word from 0 to 7.\n"
        "- dout_valid pulses exactly one cycle after the counter reaches 7 with a valid bit."
    )
    bugs = [
        HumanBug(
            golden_fragment="if (cnt == 4'd7)",
            buggy_line="if (cnt == 4'd8)",
            note="the bit counter never wraps at the word boundary",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="else if (din_valid && (cnt == 4'd7))",
            buggy_line="else if (din_valid || (cnt == 4'd7))",
            note="dout_valid fires for every valid bit instead of only the last one",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="dout_parallel <= {dout_parallel[6:0], din_serial};",
            buggy_line="dout_parallel <= {dout_parallel[6:0], din_valid};",
            note="the shift register captures the valid strobe instead of the data bit",
            edit_kind="var",
        ),
        HumanBug(
            golden_fragment="cnt <= cnt + 4'd1;",
            buggy_line="cnt <= cnt;",
            note="the bit counter never advances so the word boundary is never reached",
            edit_kind="noncond",
        ),
    ]
    return HumanDesign(name="serial2parallel", spec=spec, source=source, bugs=bugs)


def _design_width_8to16() -> HumanDesign:
    source = """\
module width_8to16 (
    input  wire        clk,
    input  wire        rst_n,
    input  wire        valid_in,
    input  wire [7:0]  data_in,
    output reg         valid_out,
    output reg  [15:0] data_out
);
    reg [7:0] data_lock;
    reg       flag;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            flag <= 1'b0;
            data_lock <= 8'd0;
        end
        else if (valid_in) begin
            if (!flag) begin
                data_lock <= data_in;
                flag <= 1'b1;
            end
            else begin
                flag <= 1'b0;
            end
        end
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            valid_out <= 1'b0;
            data_out <= 16'd0;
        end
        else if (valid_in && flag) begin
            valid_out <= 1'b1;
            data_out <= {data_lock, data_in};
        end
        else begin
            valid_out <= 1'b0;
        end
    end

    property p_pairing;
        @(posedge clk) disable iff (!rst_n)
        (valid_in && flag) |=> (valid_out && data_out == {$past(data_lock), $past(data_in)});
    endproperty
    a_pairing: assert property (p_pairing)
        else $error("the output word must pair the locked byte with the current byte");

    property p_single_byte_no_output;
        @(posedge clk) disable iff (!rst_n)
        (valid_in && !flag) |=> !valid_out;
    endproperty
    a_single_byte_no_output: assert property (p_single_byte_no_output)
        else $error("no output word may appear after only one byte of a pair");
endmodule
"""
    spec = (
        "The module 'width_8to16' packs pairs of 8-bit inputs into 16-bit outputs.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- valid_in (input): input byte valid\n"
        "- data_in (input, 8 bits): input byte\n"
        "- valid_out (output): high for one cycle when a 16-bit word is produced\n"
        "- data_out (output, 16 bits): produced word, first byte of the pair in the upper half\n\n"
        "Function:\n"
        "- The first valid byte of a pair is stored in data_lock and sets an internal flag.\n"
        "- The second valid byte completes the pair: the output word is {first byte, second byte} "
        "and valid_out pulses for one cycle.\n"
        "- After an output the module waits for the next pair."
    )
    bugs = [
        HumanBug(
            golden_fragment="data_out <= {data_lock, data_in};",
            buggy_line="data_out <= {data_in, data_lock};",
            note="byte order of the packed word is swapped",
            edit_kind="noncond",
        ),
        HumanBug(
            golden_fragment="else if (valid_in && flag) begin",
            buggy_line="else if (valid_in && !flag) begin",
            note="the output fires on the first byte of a pair instead of the second",
            edit_kind="cond",
        ),
        HumanBug(
            golden_fragment="data_lock <= data_in;",
            buggy_line="data_lock <= data_out[7:0];",
            note="the first byte of a pair is latched from the wrong source",
            edit_kind="var",
        ),
        HumanBug(
            golden_fragment="flag <= 1'b1;",
            buggy_line="flag <= 1'b0;",
            note="the pairing flag is never set so no word is ever produced",
            edit_kind="value",
        ),
    ]
    return HumanDesign(name="width_8to16", spec=spec, source=source, bugs=bugs)


def _design_ring_arbiter() -> HumanDesign:
    source = """\
module ring_arbiter (
    input  wire       clk,
    input  wire       rst_n,
    input  wire [2:0] request,
    output reg  [2:0] grant,
    output wire       busy
);
    reg [1:0] pointer;
    assign busy = (grant != 3'd0);

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            grant <= 3'd0;
            pointer <= 2'd0;
        end
        else begin
            grant <= 3'd0;
            case (pointer)
                2'd0: begin
                    if (request[0]) begin
                        grant <= 3'b001;
                        pointer <= 2'd1;
                    end
                    else pointer <= 2'd1;
                end
                2'd1: begin
                    if (request[1]) begin
                        grant <= 3'b010;
                        pointer <= 2'd2;
                    end
                    else pointer <= 2'd2;
                end
                2'd2: begin
                    if (request[2]) begin
                        grant <= 3'b100;
                        pointer <= 2'd0;
                    end
                    else pointer <= 2'd0;
                end
                default: pointer <= 2'd0;
            endcase
        end
    end

    property p_grant_onehot;
        @(posedge clk) disable iff (!rst_n)
        busy |-> $onehot(grant);
    endproperty
    a_grant_onehot: assert property (p_grant_onehot)
        else $error("at most one requester may be granted at a time");

    property p_grant_requires_request;
        @(posedge clk) disable iff (!rst_n)
        grant[0] |-> $past(request[0]);
    endproperty
    a_grant_requires_request: assert property (p_grant_requires_request)
        else $error("requester 0 may only be granted after it requested");

    property p_pointer_range;
        @(posedge clk) disable iff (!rst_n)
        pointer != 2'd3;
    endproperty
    a_pointer_range: assert property (p_pointer_range)
        else $error("the rotation pointer must never take the illegal value 3");
endmodule
"""
    spec = (
        "The module 'ring_arbiter' grants three requesters in rotating order.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- request (input, 3 bits): request lines\n"
        "- grant (output, 3 bits): registered one-hot grant\n"
        "- busy (output): high while some requester is granted\n\n"
        "Function:\n"
        "- A rotation pointer visits requesters 0, 1, 2 in order, one per cycle.\n"
        "- If the visited requester is requesting, it receives a one-cycle grant.\n"
        "- The grant vector is one-hot or zero, and a grant implies the requester asked for it "
        "in the previous cycle.\n"
        "- The pointer only takes the values 0, 1 and 2."
    )
    bugs = [
        HumanBug(
            golden_fragment="grant <= 3'b010;",
            buggy_line="grant <= 3'b011;",
            note="the grant for requester 1 is not one-hot",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="if (request[1]) begin",
            buggy_line="if (request[0]) begin",
            note="slot 1 is granted based on requester 0's request line",
            edit_kind="var",
        ),
        HumanBug(
            golden_fragment="pointer <= 2'd2;",
            buggy_line="pointer <= 2'd3;",
            note="the pointer is pushed into its illegal value",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="if (request[0]) begin",
            buggy_line="if (!request[0]) begin",
            note="requester 0 is granted exactly when it is not requesting",
            edit_kind="cond",
        ),
    ]
    return HumanDesign(name="ring_arbiter", spec=spec, source=source, bugs=bugs)


def _design_freq_div() -> HumanDesign:
    source = """\
module freq_div_3 (
    input  wire clk,
    input  wire rst_n,
    output reg  clk_div,
    output reg  [1:0] cnt
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            cnt <= 2'd0;
            clk_div <= 1'b0;
        end
        else begin
            if (cnt == 2'd2) begin
                cnt <= 2'd0;
                clk_div <= ~clk_div;
            end
            else begin
                cnt <= cnt + 2'd1;
            end
        end
    end

    property p_counter_range;
        @(posedge clk) disable iff (!rst_n)
        cnt <= 2'd2;
    endproperty
    a_counter_range: assert property (p_counter_range)
        else $error("the divider counter must stay in the range 0..2");

    property p_toggle_on_wrap;
        @(posedge clk) disable iff (!rst_n)
        (cnt == 2'd2) |=> clk_div != $past(clk_div);
    endproperty
    a_toggle_on_wrap: assert property (p_toggle_on_wrap)
        else $error("the divided clock must toggle each time the counter wraps");

    property p_hold_between_wraps;
        @(posedge clk) disable iff (!rst_n)
        (cnt != 2'd2) |=> clk_div == $past(clk_div);
    endproperty
    a_hold_between_wraps: assert property (p_hold_between_wraps)
        else $error("the divided clock must only change when the counter wraps");
endmodule
"""
    spec = (
        "The module 'freq_div_3' divides the input clock rate by three (in toggle periods).\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- clk_div (output): divided clock, toggles every three input cycles\n"
        "- cnt (output, 2 bits): internal phase counter, range 0..2\n\n"
        "Function:\n"
        "- The counter counts 0, 1, 2 and wraps.\n"
        "- Each time the counter wraps, clk_div toggles; otherwise it holds its value."
    )
    bugs = [
        HumanBug(
            golden_fragment="if (cnt == 2'd2) begin",
            buggy_line="if (cnt == 2'd3) begin",
            note="the wrap comparison is off by one so the counter leaves its range",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="clk_div <= ~clk_div;",
            buggy_line="clk_div <= clk_div;",
            note="the divided clock never toggles",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="cnt <= cnt + 2'd1;",
            buggy_line="cnt <= cnt + 2'd2;",
            note="the phase counter skips a value and wraps at the wrong time",
            edit_kind="value",
        ),
    ]
    return HumanDesign(name="freq_div_3", spec=spec, source=source, bugs=bugs)


def _design_alu_flags() -> HumanDesign:
    source = """\
module alu_flags (
    input  wire       clk,
    input  wire       rst_n,
    input  wire       issue,
    input  wire [1:0] opcode,
    input  wire [7:0] rs1,
    input  wire [7:0] rs2,
    output reg  [7:0] rd,
    output reg        zero_flag,
    output reg        ready
);
    reg [7:0] alu_out;

    always @(*) begin
        case (opcode)
            2'd0: alu_out = rs1 + rs2;
            2'd1: alu_out = rs1 - rs2;
            2'd2: alu_out = rs1 & rs2;
            default: alu_out = rs1 ^ rs2;
        endcase
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            rd <= 8'd0;
            zero_flag <= 1'b0;
            ready <= 1'b0;
        end
        else if (issue) begin
            rd <= alu_out;
            zero_flag <= (alu_out == 8'd0);
            ready <= 1'b1;
        end
        else begin
            ready <= 1'b0;
        end
    end

    property p_zero_flag_consistent;
        @(posedge clk) disable iff (!rst_n)
        (issue && alu_out == 8'd0) |=> zero_flag;
    endproperty
    a_zero_flag_consistent: assert property (p_zero_flag_consistent)
        else $error("the zero flag must be set when the captured result is zero");

    property p_ready_tracks_issue;
        @(posedge clk) disable iff (!rst_n)
        issue |=> ready;
    endproperty
    a_ready_tracks_issue: assert property (p_ready_tracks_issue)
        else $error("ready must be high the cycle after an operation is issued");

    property p_result_captured;
        @(posedge clk) disable iff (!rst_n)
        issue |=> rd == $past(alu_out);
    endproperty
    a_result_captured: assert property (p_result_captured)
        else $error("rd must capture the ALU result of the issued operation");
endmodule
"""
    spec = (
        "The module 'alu_flags' is a small registered ALU with a zero flag.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- issue (input): operation issue strobe\n"
        "- opcode (input, 2 bits): 0 = add, 1 = subtract, 2 = AND, 3 = XOR\n"
        "- rs1, rs2 (input, 8 bits): operands\n"
        "- rd (output, 8 bits): captured result\n"
        "- zero_flag (output): high when the captured result is zero\n"
        "- ready (output): high for one cycle after each issued operation\n\n"
        "Function:\n"
        "- The combinational ALU computes the selected operation.\n"
        "- When issue is high the result, the zero flag and the ready pulse are registered."
    )
    bugs = [
        HumanBug(
            golden_fragment="2'd1: alu_out = rs1 - rs2;",
            buggy_line="2'd1: alu_out = rs1 + rs2;",
            note="the subtract opcode performs an addition",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="zero_flag <= (alu_out == 8'd0);",
            buggy_line="zero_flag <= (alu_out != 8'd0);",
            note="the zero flag polarity is inverted",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="else if (issue) begin",
            buggy_line="else if (!issue) begin",
            note="results are captured exactly when no operation is issued",
            edit_kind="cond",
        ),
        HumanBug(
            golden_fragment="rd <= alu_out;",
            buggy_line="rd <= rs1;",
            note="the destination register captures an operand instead of the result",
            edit_kind="var",
        ),
    ]
    return HumanDesign(name="alu_flags", spec=spec, source=source, bugs=bugs)


def _design_traffic_ped() -> HumanDesign:
    source = """\
module traffic_ped (
    input  wire clk,
    input  wire rst_n,
    input  wire ped_request,
    output reg  [1:0] phase,
    output reg  [3:0] timer,
    output reg  walk_light
);
    localparam CARS_GO = 2'd0;
    localparam CARS_STOP = 2'd1;
    localparam WALK = 2'd2;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            phase <= CARS_GO;
            timer <= 4'd8;
            walk_light <= 1'b0;
        end
        else begin
            if (timer != 4'd0) begin
                timer <= timer - 4'd1;
            end
            else begin
                case (phase)
                    CARS_GO: begin
                        if (ped_request) begin
                            phase <= CARS_STOP;
                            timer <= 4'd2;
                        end
                        else begin
                            timer <= 4'd8;
                        end
                    end
                    CARS_STOP: begin
                        phase <= WALK;
                        timer <= 4'd6;
                        walk_light <= 1'b1;
                    end
                    WALK: begin
                        phase <= CARS_GO;
                        timer <= 4'd8;
                        walk_light <= 1'b0;
                    end
                    default: phase <= CARS_GO;
                endcase
            end
        end
    end

    property p_walk_light_in_walk;
        @(posedge clk) disable iff (!rst_n)
        walk_light |-> phase == 2'd2;
    endproperty
    a_walk_light_in_walk: assert property (p_walk_light_in_walk)
        else $error("the walk light may only be on during the WALK phase");

    property p_stop_then_walk;
        @(posedge clk) disable iff (!rst_n)
        (phase == 2'd1 && timer == 4'd0) |=> phase == 2'd2;
    endproperty
    a_stop_then_walk: assert property (p_stop_then_walk)
        else $error("the WALK phase must follow CARS_STOP when its timer expires");

    property p_legal_phase;
        @(posedge clk) disable iff (!rst_n)
        phase != 2'd3;
    endproperty
    a_legal_phase: assert property (p_legal_phase)
        else $error("the controller must never reach the unused phase encoding");
endmodule
"""
    spec = (
        "The module 'traffic_ped' is a pedestrian-crossing traffic controller.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- ped_request (input): pedestrian button\n"
        "- phase (output, 2 bits): 0 = cars go, 1 = cars stopping, 2 = walk\n"
        "- timer (output, 4 bits): cycles remaining in the current phase\n"
        "- walk_light (output): pedestrian walk light, on only during the walk phase\n\n"
        "Function:\n"
        "- In CARS_GO the controller waits for its timer and then, if a pedestrian requested, "
        "moves to CARS_STOP for 2 cycles, then WALK for 6 cycles, then back to CARS_GO.\n"
        "- The walk light is on exactly during the WALK phase.\n"
        "- The phase encoding 3 is never used."
    )
    bugs = [
        HumanBug(
            golden_fragment="walk_light <= 1'b1;",
            buggy_line="walk_light <= ped_request;",
            note="the walk light depends on the button instead of the phase",
            edit_kind="var",
        ),
        HumanBug(
            golden_fragment="phase <= WALK;",
            buggy_line="phase <= CARS_GO;",
            note="the stopping phase returns to CARS_GO and skips the walk phase",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="if (timer != 4'd0) begin",
            buggy_line="if (timer == 4'd0) begin",
            note="the timer comparison is inverted so phases change at the wrong time",
            edit_kind="cond",
        ),
        HumanBug(
            golden_fragment="walk_light <= 1'b0;",
            buggy_line="walk_light <= 1'b1;",
            note="the walk light stays on after leaving the walk phase",
            edit_kind="value",
        ),
    ]
    return HumanDesign(name="traffic_ped", spec=spec, source=source, bugs=bugs)


def _design_parity_checker() -> HumanDesign:
    source = """\
module parity_checker (
    input  wire       clk,
    input  wire       rst_n,
    input  wire       frame_valid,
    input  wire [7:0] frame_data,
    input  wire       frame_parity,
    output reg        error_flag,
    output reg  [7:0] error_count
);
    wire computed_parity;
    assign computed_parity = ^frame_data;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            error_flag <= 1'b0;
            error_count <= 8'd0;
        end
        else if (frame_valid) begin
            if (computed_parity != frame_parity) begin
                error_flag <= 1'b1;
                error_count <= error_count + 8'd1;
            end
            else begin
                error_flag <= 1'b0;
            end
        end
        else begin
            error_flag <= 1'b0;
        end
    end

    property p_error_detect;
        @(posedge clk) disable iff (!rst_n)
        (frame_valid && ((^frame_data) != frame_parity)) |=> error_flag;
    endproperty
    a_error_detect: assert property (p_error_detect)
        else $error("a parity mismatch must raise the error flag");

    property p_no_false_error;
        @(posedge clk) disable iff (!rst_n)
        (frame_valid && ((^frame_data) == frame_parity)) |=> !error_flag;
    endproperty
    a_no_false_error: assert property (p_no_false_error)
        else $error("a matching parity must not raise the error flag");

    property p_count_on_error;
        @(posedge clk) disable iff (!rst_n)
        (frame_valid && ((^frame_data) != frame_parity)) |=> error_count == $past(error_count) + 1;
    endproperty
    a_count_on_error: assert property (p_count_on_error)
        else $error("each detected parity error must increment the error counter");
endmodule
"""
    spec = (
        "The module 'parity_checker' verifies the even parity bit of incoming frames.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- frame_valid (input): frame strobe\n"
        "- frame_data (input, 8 bits): frame payload\n"
        "- frame_parity (input): parity bit accompanying the frame\n"
        "- error_flag (output): high for one cycle after a frame whose parity does not match\n"
        "- error_count (output, 8 bits): number of parity errors seen since reset\n\n"
        "Function:\n"
        "- The expected parity is the XOR reduction of the frame payload.\n"
        "- When a valid frame's parity bit differs from the computed parity, error_flag pulses "
        "and the error counter increments.\n"
        "- Matching frames clear error_flag and leave the counter unchanged."
    )
    bugs = [
        HumanBug(
            golden_fragment="assign computed_parity = ^frame_data;",
            buggy_line="assign computed_parity = &frame_data;",
            note="the parity reduction uses AND instead of XOR",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="if (computed_parity != frame_parity) begin",
            buggy_line="if (computed_parity == frame_parity) begin",
            note="the mismatch comparison is inverted",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="error_count <= error_count + 8'd1;",
            buggy_line="error_count <= error_count + 8'd2;",
            note="every error is counted twice",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="else if (frame_valid) begin",
            buggy_line="else if (frame_parity) begin",
            note="frames are only checked when the parity bit happens to be one",
            edit_kind="var",
        ),
    ]
    return HumanDesign(name="parity_checker", spec=spec, source=source, bugs=bugs)


def _design_stack_ptr() -> HumanDesign:
    source = """\
module stack_pointer (
    input  wire       clk,
    input  wire       rst_n,
    input  wire       push,
    input  wire       pop,
    output reg  [4:0] sp,
    output wire       stack_empty,
    output wire       stack_full,
    output reg        fault
);
    assign stack_empty = (sp == 5'd0);
    assign stack_full = (sp == 5'd16);

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            sp <= 5'd0;
            fault <= 1'b0;
        end
        else begin
            if (push && !pop) begin
                if (stack_full)
                    fault <= 1'b1;
                else
                    sp <= sp + 5'd1;
            end
            else if (pop && !push) begin
                if (stack_empty)
                    fault <= 1'b1;
                else
                    sp <= sp - 5'd1;
            end
        end
    end

    property p_sp_bounded;
        @(posedge clk) disable iff (!rst_n)
        sp <= 5'd16;
    endproperty
    a_sp_bounded: assert property (p_sp_bounded)
        else $error("the stack pointer may never exceed the stack capacity");

    property p_push_increments;
        @(posedge clk) disable iff (!rst_n)
        (push && !pop && !stack_full) |=> sp == $past(sp) + 1;
    endproperty
    a_push_increments: assert property (p_push_increments)
        else $error("a legal push must increment the stack pointer by one");

    property p_pop_decrements;
        @(posedge clk) disable iff (!rst_n)
        (pop && !push && !stack_empty) |=> sp == $past(sp) - 1;
    endproperty
    a_pop_decrements: assert property (p_pop_decrements)
        else $error("a legal pop must decrement the stack pointer by one");

    property p_fault_on_overflow;
        @(posedge clk) disable iff (!rst_n)
        (push && !pop && stack_full) |=> fault;
    endproperty
    a_fault_on_overflow: assert property (p_fault_on_overflow)
        else $error("pushing onto a full stack must raise the fault flag");
endmodule
"""
    spec = (
        "The module 'stack_pointer' maintains the pointer and status flags of a 16-entry stack.\n\n"
        "Ports:\n"
        "- clk, rst_n: clock and asynchronous active-low reset\n"
        "- push, pop (input): stack operations\n"
        "- sp (output, 5 bits): current number of occupied entries, 0..16\n"
        "- stack_empty, stack_full (output): occupancy flags\n"
        "- fault (output): sticky flag raised by an illegal push (full) or pop (empty)\n\n"
        "Function:\n"
        "- A push without pop increments sp unless the stack is full; overflowing raises fault.\n"
        "- A pop without push decrements sp unless the stack is empty; underflowing raises fault.\n"
        "- Simultaneous push and pop leave the pointer unchanged."
    )
    bugs = [
        HumanBug(
            golden_fragment="assign stack_full = (sp == 5'd16);",
            buggy_line="assign stack_full = (sp == 5'd17);",
            note="the full comparison is off by one so the pointer can overflow",
            edit_kind="value",
        ),
        HumanBug(
            golden_fragment="sp <= sp - 5'd1;",
            buggy_line="sp <= sp + 5'd1;",
            note="a pop moves the pointer in the wrong direction",
            edit_kind="op",
        ),
        HumanBug(
            golden_fragment="if (push && !pop) begin",
            buggy_line="if (push && pop) begin",
            note="the push path requires pop to be asserted simultaneously",
            edit_kind="cond",
        ),
        HumanBug(
            golden_fragment="if (stack_full)",
            buggy_line="if (stack_empty)",
            note="the overflow check looks at the wrong status flag",
            edit_kind="var",
        ),
    ]
    return HumanDesign(name="stack_pointer", spec=spec, source=source, bugs=bugs)


_DESIGN_BUILDERS = (
    _design_adder_pipe,
    _design_counter_12,
    _design_pulse_detect,
    _design_serial2parallel,
    _design_width_8to16,
    _design_ring_arbiter,
    _design_freq_div,
    _design_alu_flags,
    _design_traffic_ped,
    _design_parity_checker,
    _design_stack_ptr,
)


def human_designs() -> list[HumanDesign]:
    """Return every hand-written design (golden source + planted bugs)."""
    return [builder() for builder in _DESIGN_BUILDERS]


def human_crafted_designs() -> list[HumanBugCase]:
    """Return every (design, planted bug) case of the human-crafted split."""
    cases: list[HumanBugCase] = []
    for design in human_designs():
        cases.extend(_materialise(design))
    return cases
