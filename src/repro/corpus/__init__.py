"""Synthetic Verilog corpus generation.

The paper augments 108,971 open-source Verilog samples pulled from Hugging
Face.  In this offline reproduction the corpus is produced by a parametric
design generator: ~20 design families (counters, accumulators, FIFOs, ALUs,
FSMs, arbiters, LFSRs, ...) swept over widths/depths/variants to give a pool
of compilable designs across all code-length bins of Table II, plus a
corruptor that manufactures the non-compiling samples used for the
Verilog-PT pretraining split.

The human-crafted evaluation split (SVA-Eval-Human, derived from RTLLM in
the paper) is reproduced by :mod:`repro.corpus.rtllm`: hand-written designs
with hand-planted bugs, in a coding style distinct from the generator's.
"""

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec
from repro.corpus.generator import CorpusGenerator, CorpusConfig
from repro.corpus.corruptor import SyntaxCorruptor, CorruptedSample
from repro.corpus.spec import build_spec
from repro.corpus.templates import all_families, family_by_name
from repro.corpus.rtllm import human_crafted_designs, HumanBugCase

__all__ = [
    "DesignArtifact",
    "DesignFamily",
    "PortSpec",
    "CorpusGenerator",
    "CorpusConfig",
    "SyntaxCorruptor",
    "CorruptedSample",
    "build_spec",
    "all_families",
    "family_by_name",
    "human_crafted_designs",
    "HumanBugCase",
]
