"""Design-family templates for the synthetic corpus.

Every template builds a :class:`~repro.corpus.metadata.DesignArtifact`:
golden Verilog source (within the supported subset), a functional
description, port documentation, behavioural bullet points, and optionally a
couple of hand-written SVA blocks characteristic of the family.  The corpus
generator sweeps each family's parameter grid to obtain designs across all
code-length bins of Table II.
"""

from __future__ import annotations

from repro.corpus.metadata import DesignFamily

from repro.corpus.templates import arbiters, composite, counters, datapath, fsm, shift


def all_families() -> list[DesignFamily]:
    """Return every registered design family."""
    families: list[DesignFamily] = []
    families.extend(counters.FAMILIES)
    families.extend(datapath.FAMILIES)
    families.extend(shift.FAMILIES)
    families.extend(fsm.FAMILIES)
    families.extend(arbiters.FAMILIES)
    families.extend(composite.FAMILIES)
    return families


def family_by_name(name: str) -> DesignFamily:
    """Look up one family by name."""
    for family in all_families():
        if family.name == name:
            return family
    raise KeyError(f"unknown design family '{name}'")


__all__ = ["all_families", "family_by_name"]
