"""Arbitration and storage design families: arbiters, FIFO flags, register files."""

from __future__ import annotations

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec


def build_priority_arbiter(name: str, requesters: int = 4) -> DesignArtifact:
    """A fixed-priority arbiter (bit 0 has the highest priority)."""
    grant_terms = []
    for index in range(requesters):
        if index == 0:
            grant_terms.append(f"        if (req[0]) grant = {requesters}'d1;\n")
        else:
            one_hot = ("1" + "0" * index).rjust(requesters, "0")
            grant_terms.append(
                f"        else if (req[{index}]) grant = {requesters}'b{one_hot};\n"
            )
    grant_block = "".join(grant_terms)
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire [{requesters - 1}:0] req,\n"
        f"    output reg [{requesters - 1}:0] grant,\n"
        f"    output reg [{requesters - 1}:0] grant_q,\n"
        f"    output wire any_grant\n"
        f");\n"
        f"    assign any_grant = (grant != {requesters}'d0);\n"
        f"    always @(*) begin\n"
        f"        grant = {requesters}'d0;\n"
        f"{grant_block}"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) grant_q <= {requesters}'d0;\n"
        f"        else grant_q <= grant;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="priority_arbiter",
        source=source,
        description=f"a {requesters}-way fixed-priority arbiter (request 0 has the highest priority)",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("req", "input", requesters, "request lines, one per requester"),
            PortSpec("grant", "output", requesters, "combinational one-hot grant"),
            PortSpec("grant_q", "output", requesters, "registered copy of the grant"),
            PortSpec("any_grant", "output", 1, "high when any grant is active"),
        ],
        behaviour=[
            "The lowest-numbered active request wins; the grant output is one-hot.",
            "When no request is active the grant is zero.",
            "grant_q registers the combinational grant with one cycle of delay.",
        ],
        template_svas=[
            "property p_grant_onehot;\n"
            "    @(posedge clk) disable iff (!rst_n) any_grant |-> $onehot(grant);\n"
            "endproperty\n"
            "a_grant_onehot: assert property (p_grant_onehot) "
            "else $error(\"the grant vector must be one-hot whenever a grant is active\");",
            "property p_highest_priority_wins;\n"
            "    @(posedge clk) disable iff (!rst_n) req[0] |-> grant[0];\n"
            "endproperty\n"
            "a_highest_priority_wins: assert property (p_highest_priority_wins) "
            "else $error(\"requester 0 must always win when it requests\");",
        ],
        parameters={"requesters": requesters},
    )


def build_round_robin_arbiter(name: str, requesters: int = 2) -> DesignArtifact:
    """A two-requester round-robin arbiter with a fairness pointer."""
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire req0,\n"
        f"    input wire req1,\n"
        f"    output reg grant0,\n"
        f"    output reg grant1,\n"
        f"    output reg last_winner\n"
        f");\n"
        f"    always @(*) begin\n"
        f"        grant0 = 1'b0;\n"
        f"        grant1 = 1'b0;\n"
        f"        if (req0 && req1) begin\n"
        f"            if (last_winner) grant0 = 1'b1;\n"
        f"            else grant1 = 1'b1;\n"
        f"        end\n"
        f"        else if (req0) grant0 = 1'b1;\n"
        f"        else if (req1) grant1 = 1'b1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) last_winner <= 1'b1;\n"
        f"        else if (grant0) last_winner <= 1'b0;\n"
        f"        else if (grant1) last_winner <= 1'b1;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="round_robin_arbiter",
        source=source,
        description="a two-way round-robin arbiter that alternates under contention",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("req0", "input", 1, "request from requester 0"),
            PortSpec("req1", "input", 1, "request from requester 1"),
            PortSpec("grant0", "output", 1, "grant to requester 0"),
            PortSpec("grant1", "output", 1, "grant to requester 1"),
            PortSpec("last_winner", "output", 1, "identity of the last granted requester"),
        ],
        behaviour=[
            "With a single active request, that requester is granted immediately.",
            "Under contention the requester that did not win last time is granted (round robin).",
            "The two grants are never active in the same cycle.",
            "The last_winner register tracks which requester was granted most recently.",
        ],
        template_svas=[
            "property p_mutually_exclusive;\n"
            "    @(posedge clk) disable iff (!rst_n) !(grant0 && grant1);\n"
            "endproperty\n"
            "a_mutually_exclusive: assert property (p_mutually_exclusive) "
            "else $error(\"both grants must never be active together\");",
            "property p_no_spurious_grant;\n"
            "    @(posedge clk) disable iff (!rst_n) (!req0 && !req1) |-> (!grant0 && !grant1);\n"
            "endproperty\n"
            "a_no_spurious_grant: assert property (p_no_spurious_grant) "
            "else $error(\"no grant may be given without a request\");",
        ],
        parameters={"requesters": requesters},
    )


def build_fifo_flags(name: str, depth: int = 8) -> DesignArtifact:
    """FIFO occupancy tracking (counter-based full/empty flags, no storage)."""
    width = max(1, depth.bit_length())
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire push,\n"
        f"    input wire pop,\n"
        f"    output reg [{width - 1}:0] count,\n"
        f"    output wire full,\n"
        f"    output wire empty,\n"
        f"    output reg overflow_err,\n"
        f"    output reg underflow_err\n"
        f");\n"
        f"    assign full = (count == {width}'d{depth});\n"
        f"    assign empty = (count == {width}'d0);\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) count <= {width}'d0;\n"
        f"        else if (push && !pop && !full) count <= count + {width}'d1;\n"
        f"        else if (pop && !push && !empty) count <= count - {width}'d1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) overflow_err <= 1'b0;\n"
        f"        else if (push && !pop && full) overflow_err <= 1'b1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) underflow_err <= 1'b0;\n"
        f"        else if (pop && !push && empty) underflow_err <= 1'b1;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="fifo_flags",
        source=source,
        description=f"occupancy tracking for a depth-{depth} FIFO with sticky error flags",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("push", "input", 1, "write strobe"),
            PortSpec("pop", "input", 1, "read strobe"),
            PortSpec("count", "output", width, "current occupancy"),
            PortSpec("full", "output", 1, f"high when the occupancy equals {depth}"),
            PortSpec("empty", "output", 1, "high when the occupancy is zero"),
            PortSpec("overflow_err", "output", 1, "sticky flag: a push was attempted while full"),
            PortSpec("underflow_err", "output", 1, "sticky flag: a pop was attempted while empty"),
        ],
        behaviour=[
            "A push without a simultaneous pop increments the occupancy unless the FIFO is full.",
            "A pop without a simultaneous push decrements the occupancy unless the FIFO is empty.",
            "Simultaneous push and pop leave the occupancy unchanged.",
            "Attempting to push while full sets the sticky overflow_err flag; popping while empty "
            "sets underflow_err.",
            "full and empty are derived combinationally from the occupancy counter.",
        ],
        template_svas=[
            "property p_never_full_and_empty;\n"
            "    @(posedge clk) disable iff (!rst_n) !(full && empty);\n"
            "endproperty\n"
            "a_never_full_and_empty: assert property (p_never_full_and_empty) "
            "else $error(\"the FIFO cannot be full and empty at the same time\");",
            "property p_count_bounded;\n"
            f"    @(posedge clk) disable iff (!rst_n) count <= {width}'d{depth};\n"
            "endproperty\n"
            "a_count_bounded: assert property (p_count_bounded) "
            "else $error(\"the occupancy may never exceed the FIFO depth\");",
            "property p_push_increments;\n"
            "    @(posedge clk) disable iff (!rst_n) (push && !pop && !full) |=> count == $past(count) + 1;\n"
            "endproperty\n"
            "a_push_increments: assert property (p_push_increments) "
            "else $error(\"a successful push must increment the occupancy\");",
        ],
        parameters={"depth": depth},
    )


def build_register_file(name: str, width: int = 8) -> DesignArtifact:
    """A four-entry register file with one write and one read port (no arrays)."""
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire wr_en,\n"
        f"    input wire [1:0] wr_addr,\n"
        f"    input wire [{width - 1}:0] wr_data,\n"
        f"    input wire [1:0] rd_addr,\n"
        f"    output reg [{width - 1}:0] rd_data\n"
        f");\n"
        f"    reg [{width - 1}:0] reg0;\n"
        f"    reg [{width - 1}:0] reg1;\n"
        f"    reg [{width - 1}:0] reg2;\n"
        f"    reg [{width - 1}:0] reg3;\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            reg0 <= {width}'d0;\n"
        f"            reg1 <= {width}'d0;\n"
        f"            reg2 <= {width}'d0;\n"
        f"            reg3 <= {width}'d0;\n"
        f"        end\n"
        f"        else if (wr_en) begin\n"
        f"            case (wr_addr)\n"
        f"                2'd0: reg0 <= wr_data;\n"
        f"                2'd1: reg1 <= wr_data;\n"
        f"                2'd2: reg2 <= wr_data;\n"
        f"                2'd3: reg3 <= wr_data;\n"
        f"            endcase\n"
        f"        end\n"
        f"    end\n"
        f"    always @(*) begin\n"
        f"        case (rd_addr)\n"
        f"            2'd0: rd_data = reg0;\n"
        f"            2'd1: rd_data = reg1;\n"
        f"            2'd2: rd_data = reg2;\n"
        f"            default: rd_data = reg3;\n"
        f"        endcase\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="register_file",
        source=source,
        description=f"a four-entry {width}-bit register file with one write and one read port",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("wr_en", "input", 1, "write enable"),
            PortSpec("wr_addr", "input", 2, "write address"),
            PortSpec("wr_data", "input", width, "write data"),
            PortSpec("rd_addr", "input", 2, "read address"),
            PortSpec("rd_data", "output", width, "combinational read data"),
        ],
        behaviour=[
            "Reset clears all four registers.",
            "When wr_en is high the register selected by wr_addr captures wr_data on the clock edge.",
            "rd_data combinationally reflects the register selected by rd_addr.",
            "A write to one register must not disturb the other three.",
        ],
        template_svas=[
            "property p_write_entry0;\n"
            "    @(posedge clk) disable iff (!rst_n) (wr_en && wr_addr == 2'd0) |=> reg0 == $past(wr_data);\n"
            "endproperty\n"
            "a_write_entry0: assert property (p_write_entry0) "
            "else $error(\"a write to entry 0 must capture wr_data\");",
            "property p_entry1_stable_without_write;\n"
            "    @(posedge clk) disable iff (!rst_n) !(wr_en && wr_addr == 2'd1) |=> reg1 == $past(reg1);\n"
            "endproperty\n"
            "a_entry1_stable_without_write: assert property (p_entry1_stable_without_write) "
            "else $error(\"entry 1 must hold its value unless it is written\");",
        ],
        parameters={"width": width},
    )


FAMILIES: list[DesignFamily] = [
    DesignFamily(
        name="priority_arbiter",
        build=build_priority_arbiter,
        description="fixed-priority arbiters",
        parameter_grid=({"requesters": 3}, {"requesters": 4}, {"requesters": 6}),
    ),
    DesignFamily(
        name="round_robin_arbiter",
        build=build_round_robin_arbiter,
        description="round-robin arbiters",
        parameter_grid=({"requesters": 2},),
    ),
    DesignFamily(
        name="fifo_flags",
        build=build_fifo_flags,
        description="FIFO occupancy trackers",
        parameter_grid=({"depth": 4}, {"depth": 8}, {"depth": 16}),
    ),
    DesignFamily(
        name="register_file",
        build=build_register_file,
        description="small register files",
        parameter_grid=({"width": 8}, {"width": 16}),
    ),
]
