"""Datapath design families: accumulators, ALUs, comparators, trackers."""

from __future__ import annotations

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec


def build_accumulator(name: str, width: int = 8, burst: int = 4) -> DesignArtifact:
    """The paper's motivating example: accumulate a burst of inputs, flag completion."""
    cnt_width = max(1, (burst - 1).bit_length())
    out_width = width + cnt_width
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire [{width - 1}:0] data_in,\n"
        f"    input wire valid_in,\n"
        f"    output reg [{out_width - 1}:0] data_out,\n"
        f"    output reg valid_out\n"
        f");\n"
        f"    reg [{cnt_width - 1}:0] cnt;\n"
        f"    wire end_cnt;\n"
        f"    assign end_cnt = (cnt == {cnt_width}'d{burst - 1}) && valid_in;\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) cnt <= {cnt_width}'d0;\n"
        f"        else if (valid_in) begin\n"
        f"            if (end_cnt) cnt <= {cnt_width}'d0;\n"
        f"            else cnt <= cnt + {cnt_width}'d1;\n"
        f"        end\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) data_out <= {out_width}'d0;\n"
        f"        else if (valid_in) begin\n"
        f"            if (cnt == {cnt_width}'d0) data_out <= data_in;\n"
        f"            else data_out <= data_out + data_in;\n"
        f"        end\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) valid_out <= 1'b0;\n"
        f"        else if (end_cnt) valid_out <= 1'b1;\n"
        f"        else valid_out <= 1'b0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="accumulator",
        source=source,
        description=f"an accumulator that sums bursts of {burst} valid {width}-bit inputs",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("data_in", "input", width, "input operand"),
            PortSpec("valid_in", "input", 1, "input valid strobe"),
            PortSpec("data_out", "output", out_width, f"running sum of the current burst of {burst} inputs"),
            PortSpec("valid_out", "output", 1, f"pulses for one cycle when a burst of {burst} inputs completes"),
        ],
        behaviour=[
            f"An internal counter counts valid inputs from 0 to {burst - 1}.",
            "On the first valid input of a burst the accumulator loads data_in; on later "
            "valid inputs it adds data_in to the running sum.",
            f"valid_out must be high exactly one cycle after the {burst}-th valid input of a burst.",
            "valid_out is low in all other cycles.",
        ],
        template_svas=[
            "property p_valid_out_follows_end;\n"
            "    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;\n"
            "endproperty\n"
            "a_valid_out_follows_end: assert property (p_valid_out_follows_end) "
            "else $error(\"valid_out should be high one cycle after the burst completes\");",
            "property p_valid_out_only_after_end;\n"
            "    @(posedge clk) disable iff (!rst_n) !end_cnt |-> ##1 valid_out == 0;\n"
            "endproperty\n"
            "a_valid_out_only_after_end: assert property (p_valid_out_only_after_end) "
            "else $error(\"valid_out must stay low unless a burst just completed\");",
        ],
        parameters={"width": width, "burst": burst},
    )


def build_alu(name: str, width: int = 8, registered: int = 1) -> DesignArtifact:
    """A small ALU with add/sub/and/or/xor/shift operations and a zero flag."""
    ops = [
        ("3'd0", "a + b", "addition"),
        ("3'd1", "a - b", "subtraction"),
        ("3'd2", "a & b", "bitwise AND"),
        ("3'd3", "a | b", "bitwise OR"),
        ("3'd4", "a ^ b", "bitwise XOR"),
        ("3'd5", "a << 1", "shift a left by one"),
        ("3'd6", "a >> 1", "shift a right by one"),
    ]
    case_lines = "".join(
        f"            {code}: alu_result = {expr};\n" for code, expr, _ in ops
    )
    comb = (
        f"    always @(*) begin\n"
        f"        case (op)\n"
        f"{case_lines}"
        f"            default: alu_result = {width}'d0;\n"
        f"        endcase\n"
        f"    end\n"
    )
    if registered:
        output_logic = (
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) result <= {width}'d0;\n"
            f"        else if (start) result <= alu_result;\n"
            f"    end\n"
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) zero <= 1'b0;\n"
            f"        else if (start) zero <= (alu_result == {width}'d0);\n"
            f"    end\n"
        )
        result_decl = f"    output reg [{width - 1}:0] result,\n    output reg zero\n"
    else:
        output_logic = (
            f"    assign result = alu_result;\n"
            f"    assign zero = (alu_result == {width}'d0);\n"
        )
        result_decl = f"    output wire [{width - 1}:0] result,\n    output wire zero\n"
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire start,\n"
        f"    input wire [2:0] op,\n"
        f"    input wire [{width - 1}:0] a,\n"
        f"    input wire [{width - 1}:0] b,\n"
        f"{result_decl}"
        f");\n"
        f"    reg [{width - 1}:0] alu_result;\n"
        f"{comb}"
        f"{output_logic}"
        f"endmodule\n"
    )
    behaviour = [f"Opcode {code} computes {desc}." for code, _, desc in ops]
    behaviour.append("Any other opcode produces zero.")
    if registered:
        behaviour.append("The result and the zero flag are registered and only update when start is high.")
        behaviour.append("The zero flag is high when the captured result is zero.")
    else:
        behaviour.append("The result and the zero flag are purely combinational.")
    svas = []
    if registered:
        svas.append(
            "property p_result_holds_without_start;\n"
            "    @(posedge clk) disable iff (!rst_n) !start |=> result == $past(result);\n"
            "endproperty\n"
            "a_result_holds_without_start: assert property (p_result_holds_without_start) "
            "else $error(\"result must hold when start is low\");"
        )
    return DesignArtifact(
        name=name,
        family="alu",
        source=source,
        description=f"a {width}-bit arithmetic/logic unit with seven operations"
        + (" and registered outputs" if registered else ""),
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("start", "input", 1, "capture strobe for the registered result"),
            PortSpec("op", "input", 3, "operation select"),
            PortSpec("a", "input", width, "first operand"),
            PortSpec("b", "input", width, "second operand"),
            PortSpec("result", "output", width, "operation result"),
            PortSpec("zero", "output", 1, "high when the result is zero"),
        ],
        behaviour=behaviour,
        template_svas=svas,
        parameters={"width": width, "registered": registered},
    )


def build_saturating_adder(name: str, width: int = 8) -> DesignArtifact:
    """An unsigned adder that saturates instead of wrapping."""
    max_value = (1 << width) - 1
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire valid,\n"
        f"    input wire [{width - 1}:0] a,\n"
        f"    input wire [{width - 1}:0] b,\n"
        f"    output reg [{width - 1}:0] sum,\n"
        f"    output reg overflow\n"
        f");\n"
        f"    wire [{width}:0] wide_sum;\n"
        f"    assign wide_sum = {{1'b0, a}} + {{1'b0, b}};\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            sum <= {width}'d0;\n"
        f"            overflow <= 1'b0;\n"
        f"        end\n"
        f"        else if (valid) begin\n"
        f"            if (wide_sum > {width + 1}'d{max_value}) begin\n"
        f"                sum <= {width}'d{max_value};\n"
        f"                overflow <= 1'b1;\n"
        f"            end\n"
        f"            else begin\n"
        f"                sum <= wide_sum[{width - 1}:0];\n"
        f"                overflow <= 1'b0;\n"
        f"            end\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="saturating_adder",
        source=source,
        description=f"a {width}-bit saturating unsigned adder with an overflow flag",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("valid", "input", 1, "input valid strobe"),
            PortSpec("a", "input", width, "first addend"),
            PortSpec("b", "input", width, "second addend"),
            PortSpec("sum", "output", width, "saturated sum, captured when valid is high"),
            PortSpec("overflow", "output", 1, "high when the true sum exceeded the output range"),
        ],
        behaviour=[
            "When valid is high the module captures the sum of a and b.",
            f"If the true sum exceeds {max_value} the output saturates at {max_value} and overflow is set.",
            "Otherwise the exact sum is captured and overflow is cleared.",
            "When valid is low, sum and overflow hold their previous values.",
        ],
        template_svas=[
            "property p_saturation_flag;\n"
            "    @(posedge clk) disable iff (!rst_n) "
            f"(valid && (({{1'b0, a}} + {{1'b0, b}}) > {width + 1}'d{max_value})) |=> (sum == {width}'d{max_value} && overflow);\n"
            "endproperty\n"
            "a_saturation_flag: assert property (p_saturation_flag) "
            "else $error(\"an overflowing addition must saturate and raise overflow\");"
        ],
        parameters={"width": width},
    )


def build_minmax_tracker(name: str, width: int = 8) -> DesignArtifact:
    """Tracks the minimum and maximum of a sample stream."""
    max_value = (1 << width) - 1
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire clear,\n"
        f"    input wire sample_valid,\n"
        f"    input wire [{width - 1}:0] sample,\n"
        f"    output reg [{width - 1}:0] min_value,\n"
        f"    output reg [{width - 1}:0] max_value,\n"
        f"    output reg seen_any\n"
        f");\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            min_value <= {width}'d{max_value};\n"
        f"            max_value <= {width}'d0;\n"
        f"            seen_any <= 1'b0;\n"
        f"        end\n"
        f"        else if (clear) begin\n"
        f"            min_value <= {width}'d{max_value};\n"
        f"            max_value <= {width}'d0;\n"
        f"            seen_any <= 1'b0;\n"
        f"        end\n"
        f"        else if (sample_valid) begin\n"
        f"            seen_any <= 1'b1;\n"
        f"            if (sample < min_value) min_value <= sample;\n"
        f"            if (sample > max_value) max_value <= sample;\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="minmax_tracker",
        source=source,
        description=f"a running minimum/maximum tracker over a stream of {width}-bit samples",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("clear", "input", 1, "synchronous clear of the tracked extremes"),
            PortSpec("sample_valid", "input", 1, "sample valid strobe"),
            PortSpec("sample", "input", width, "input sample"),
            PortSpec("min_value", "output", width, "smallest sample seen since the last clear"),
            PortSpec("max_value", "output", width, "largest sample seen since the last clear"),
            PortSpec("seen_any", "output", 1, "high once at least one sample was accepted"),
        ],
        behaviour=[
            f"Reset and clear initialise min_value to {max_value} and max_value to 0 and clear seen_any.",
            "Each valid sample updates min_value/max_value when it is smaller/larger than the stored extreme.",
            "seen_any is set by the first valid sample after a clear.",
        ],
        template_svas=[
            "property p_minmax_ordering;\n"
            "    @(posedge clk) disable iff (!rst_n) seen_any |-> (min_value <= max_value);\n"
            "endproperty\n"
            "a_minmax_ordering: assert property (p_minmax_ordering) "
            "else $error(\"min_value may never exceed max_value once samples were seen\");"
        ],
        parameters={"width": width},
    )


def build_serial_parity(name: str, even: int = 1) -> DesignArtifact:
    """A serial parity accumulator over a bit stream."""
    init = "1'b0" if even else "1'b1"
    parity_name = "even" if even else "odd"
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire clear,\n"
        f"    input wire bit_valid,\n"
        f"    input wire bit_in,\n"
        f"    output reg parity,\n"
        f"    output reg [7:0] bit_count\n"
        f");\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            parity <= {init};\n"
        f"            bit_count <= 8'd0;\n"
        f"        end\n"
        f"        else if (clear) begin\n"
        f"            parity <= {init};\n"
        f"            bit_count <= 8'd0;\n"
        f"        end\n"
        f"        else if (bit_valid) begin\n"
        f"            parity <= parity ^ bit_in;\n"
        f"            bit_count <= bit_count + 8'd1;\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="serial_parity",
        source=source,
        description=f"a serial {parity_name}-parity accumulator over an input bit stream",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("clear", "input", 1, "synchronous clear of the parity accumulator"),
            PortSpec("bit_valid", "input", 1, "input bit valid strobe"),
            PortSpec("bit_in", "input", 1, "serial data bit"),
            PortSpec("parity", "output", 1, f"running {parity_name} parity of the accepted bits"),
            PortSpec("bit_count", "output", 8, "number of bits accepted since the last clear"),
        ],
        behaviour=[
            f"Reset and clear set parity to {init} and clear the bit counter.",
            "Each valid bit XORs into the parity register and increments the bit counter.",
            "Bits are ignored while bit_valid is low.",
        ],
        template_svas=[
            "property p_parity_toggle;\n"
            "    @(posedge clk) disable iff (!rst_n) (bit_valid && bit_in && !clear) |=> parity == !$past(parity);\n"
            "endproperty\n"
            "a_parity_toggle: assert property (p_parity_toggle) "
            "else $error(\"an accepted 1 bit must toggle the parity\");"
        ],
        parameters={"even": even},
    )


def build_threshold_detector(name: str, width: int = 8, hysteresis: int = 4) -> DesignArtifact:
    """A comparator with hysteresis (Schmitt-trigger style)."""
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire [{width - 1}:0] level,\n"
        f"    input wire [{width - 1}:0] threshold,\n"
        f"    output reg above\n"
        f");\n"
        f"    wire [{width - 1}:0] low_threshold;\n"
        f"    assign low_threshold = threshold - {width}'d{hysteresis};\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) above <= 1'b0;\n"
        f"        else if (!above && (level >= threshold)) above <= 1'b1;\n"
        f"        else if (above && (level < low_threshold)) above <= 1'b0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="threshold_detector",
        source=source,
        description=f"a {width}-bit threshold detector with a hysteresis band of {hysteresis}",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("level", "input", width, "measured level"),
            PortSpec("threshold", "input", width, "upper switching threshold"),
            PortSpec("above", "output", 1, "high while the level is considered above the threshold"),
        ],
        behaviour=[
            "above rises when the level reaches the threshold while the detector was low.",
            f"above falls only when the level drops below threshold minus {hysteresis}.",
            "Between the two thresholds the previous decision is held (hysteresis).",
        ],
        template_svas=[
            "property p_rise_on_threshold;\n"
            "    @(posedge clk) disable iff (!rst_n) (!above && (level >= threshold)) |=> above;\n"
            "endproperty\n"
            "a_rise_on_threshold: assert property (p_rise_on_threshold) "
            "else $error(\"the detector must switch high when the level reaches the threshold\");"
        ],
        parameters={"width": width, "hysteresis": hysteresis},
    )


FAMILIES: list[DesignFamily] = [
    DesignFamily(
        name="accumulator",
        build=build_accumulator,
        description="burst accumulators (the paper's motivating example)",
        parameter_grid=(
            {"width": 8, "burst": 4},
            {"width": 4, "burst": 4},
            {"width": 8, "burst": 8},
            {"width": 12, "burst": 4},
        ),
    ),
    DesignFamily(
        name="alu",
        build=build_alu,
        description="small ALUs with registered or combinational outputs",
        parameter_grid=(
            {"width": 8, "registered": 1},
            {"width": 8, "registered": 0},
            {"width": 16, "registered": 1},
            {"width": 4, "registered": 1},
        ),
    ),
    DesignFamily(
        name="saturating_adder",
        build=build_saturating_adder,
        description="saturating adders",
        parameter_grid=({"width": 8}, {"width": 6}, {"width": 12}),
    ),
    DesignFamily(
        name="minmax_tracker",
        build=build_minmax_tracker,
        description="running min/max trackers",
        parameter_grid=({"width": 8}, {"width": 6}),
    ),
    DesignFamily(
        name="serial_parity",
        build=build_serial_parity,
        description="serial parity accumulators",
        parameter_grid=({"even": 1}, {"even": 0}),
    ),
    DesignFamily(
        name="threshold_detector",
        build=build_threshold_detector,
        description="threshold detectors with hysteresis",
        parameter_grid=(
            {"width": 8, "hysteresis": 4},
            {"width": 8, "hysteresis": 8},
            {"width": 6, "hysteresis": 2},
        ),
    ),
]
