"""Composite (long) design families used to populate the larger length bins.

Table II bins designs by code length up to "(200, +inf)".  These templates
replicate or chain datapath blocks inside a single module so the corpus
contains designs well beyond 200 lines while staying within the supported
language subset.
"""

from __future__ import annotations

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec


def build_multichannel_accumulator(name: str, channels: int = 4, width: int = 8) -> DesignArtifact:
    """N independent burst accumulators sharing a clock, plus a combined flag."""
    burst = 4
    cnt_width = 2
    out_width = width + cnt_width
    channel_blocks = []
    port_lines = []
    ports = [
        PortSpec("clk", "input", 1, "clock, rising edge active"),
        PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
    ]
    behaviour = [
        f"The module contains {channels} independent accumulator channels.",
        f"Each channel sums bursts of {burst} valid inputs on its own data/valid pair.",
        "Each channel's valid_out pulses one cycle after its burst completes.",
        "all_done is high when every channel's valid_out is high simultaneously.",
    ]
    for ch in range(channels):
        port_lines.append(f"    input wire [{width - 1}:0] data_in_{ch},\n")
        port_lines.append(f"    input wire valid_in_{ch},\n")
        port_lines.append(f"    output reg [{out_width - 1}:0] data_out_{ch},\n")
        port_lines.append(f"    output reg valid_out_{ch},\n")
        ports.extend(
            [
                PortSpec(f"data_in_{ch}", "input", width, f"operand stream for channel {ch}"),
                PortSpec(f"valid_in_{ch}", "input", 1, f"valid strobe for channel {ch}"),
                PortSpec(f"data_out_{ch}", "output", out_width, f"running burst sum of channel {ch}"),
                PortSpec(f"valid_out_{ch}", "output", 1, f"burst-complete pulse of channel {ch}"),
            ]
        )
        channel_blocks.append(
            f"    reg [{cnt_width - 1}:0] cnt_{ch};\n"
            f"    wire end_cnt_{ch};\n"
            f"    assign end_cnt_{ch} = (cnt_{ch} == {cnt_width}'d{burst - 1}) && valid_in_{ch};\n"
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) cnt_{ch} <= {cnt_width}'d0;\n"
            f"        else if (valid_in_{ch}) begin\n"
            f"            if (end_cnt_{ch}) cnt_{ch} <= {cnt_width}'d0;\n"
            f"            else cnt_{ch} <= cnt_{ch} + {cnt_width}'d1;\n"
            f"        end\n"
            f"    end\n"
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) data_out_{ch} <= {out_width}'d0;\n"
            f"        else if (valid_in_{ch}) begin\n"
            f"            if (cnt_{ch} == {cnt_width}'d0) data_out_{ch} <= data_in_{ch};\n"
            f"            else data_out_{ch} <= data_out_{ch} + data_in_{ch};\n"
            f"        end\n"
            f"    end\n"
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) valid_out_{ch} <= 1'b0;\n"
            f"        else if (end_cnt_{ch}) valid_out_{ch} <= 1'b1;\n"
            f"        else valid_out_{ch} <= 1'b0;\n"
            f"    end\n"
        )
    all_done_expr = " && ".join(f"valid_out_{ch}" for ch in range(channels))
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        + "".join(port_lines)
        + f"    output wire all_done\n"
        f");\n"
        + "".join(channel_blocks)
        + f"    assign all_done = {all_done_expr};\n"
        f"endmodule\n"
    )
    ports.append(PortSpec("all_done", "output", 1, "high when every channel completed a burst together"))
    svas = [
        "property p_ch0_valid_out;\n"
        "    @(posedge clk) disable iff (!rst_n) end_cnt_0 |-> ##1 valid_out_0;\n"
        "endproperty\n"
        "a_ch0_valid_out: assert property (p_ch0_valid_out) "
        "else $error(\"channel 0 valid_out must follow its burst completion\");",
    ]
    if channels > 1:
        svas.append(
            "property p_ch1_valid_out;\n"
            "    @(posedge clk) disable iff (!rst_n) end_cnt_1 |-> ##1 valid_out_1;\n"
            "endproperty\n"
            "a_ch1_valid_out: assert property (p_ch1_valid_out) "
            "else $error(\"channel 1 valid_out must follow its burst completion\");"
        )
    return DesignArtifact(
        name=name,
        family="multichannel_accumulator",
        source=source,
        description=f"a bank of {channels} independent {width}-bit burst accumulators",
        ports=ports,
        behaviour=behaviour,
        template_svas=svas,
        parameters={"channels": channels, "width": width},
    )


def build_pipelined_adder(name: str, stages: int = 4, width: int = 8) -> DesignArtifact:
    """A pipeline that adds a constant per stage, with a valid bit travelling along."""
    stage_decls = []
    stage_logic = []
    for stage in range(stages):
        stage_decls.append(f"    reg [{width - 1}:0] stage_data_{stage};\n")
        stage_decls.append(f"    reg stage_valid_{stage};\n")
        source_data = "in_data" if stage == 0 else f"stage_data_{stage - 1}"
        source_valid = "in_valid" if stage == 0 else f"stage_valid_{stage - 1}"
        stage_logic.append(
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) begin\n"
            f"            stage_data_{stage} <= {width}'d0;\n"
            f"            stage_valid_{stage} <= 1'b0;\n"
            f"        end\n"
            f"        else begin\n"
            f"            stage_data_{stage} <= {source_data} + {width}'d{stage + 1};\n"
            f"            stage_valid_{stage} <= {source_valid};\n"
            f"        end\n"
            f"    end\n"
        )
    total_offset = sum(range(1, stages + 1))
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire in_valid,\n"
        f"    input wire [{width - 1}:0] in_data,\n"
        f"    output wire out_valid,\n"
        f"    output wire [{width - 1}:0] out_data\n"
        f");\n"
        + "".join(stage_decls)
        + "".join(stage_logic)
        + f"    assign out_valid = stage_valid_{stages - 1};\n"
        f"    assign out_data = stage_data_{stages - 1};\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="pipelined_adder",
        source=source,
        description=f"a {stages}-stage pipeline that adds {total_offset} to each valid input",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("in_valid", "input", 1, "input valid"),
            PortSpec("in_data", "input", width, "input operand"),
            PortSpec("out_valid", "output", 1, f"input valid delayed by {stages} cycles"),
            PortSpec("out_data", "output", width, f"input operand plus {total_offset}, delayed by {stages} cycles"),
        ],
        behaviour=[
            f"Stage k (1-based) adds the constant k to the data passing through it.",
            f"A valid bit travels with the data, so out_valid is in_valid delayed by {stages} cycles.",
            f"After the full pipeline each sample has been increased by {total_offset} in total.",
            "Reset clears every pipeline register and valid bit.",
        ],
        template_svas=[
            "property p_valid_pipeline;\n"
            "    @(posedge clk) disable iff (!rst_n) "
            f"stage_valid_{stages - 2} |=> stage_valid_{stages - 1};\n"
            "endproperty\n"
            "a_valid_pipeline: assert property (p_valid_pipeline) "
            "else $error(\"the valid bit must advance one stage per cycle\");"
            if stages >= 2
            else "property p_valid_pipeline;\n"
            "    @(posedge clk) disable iff (!rst_n) in_valid |=> stage_valid_0;\n"
            "endproperty\n"
            "a_valid_pipeline: assert property (p_valid_pipeline) "
            "else $error(\"the valid bit must advance one stage per cycle\");",
            "property p_stage0_adds_one;\n"
            "    @(posedge clk) disable iff (!rst_n) 1'b1 |=> "
            f"stage_data_0 == $past(in_data) + {width}'d1;\n"
            "endproperty\n"
            "a_stage0_adds_one: assert property (p_stage0_adds_one) "
            "else $error(\"stage 0 must add exactly one to the incoming data\");",
        ],
        parameters={"stages": stages, "width": width},
    )


def build_status_datapath(name: str, width: int = 8, channels: int = 2) -> DesignArtifact:
    """A monitored datapath: per-channel offset adders plus min/max and activity tracking."""
    max_value = (1 << width) - 1
    channel_blocks = []
    port_lines = []
    ports = [
        PortSpec("clk", "input", 1, "clock, rising edge active"),
        PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
        PortSpec("clear", "input", 1, "synchronous clear of the statistics"),
    ]
    for ch in range(channels):
        port_lines.append(f"    input wire [{width - 1}:0] sample_{ch},\n")
        port_lines.append(f"    input wire sample_valid_{ch},\n")
        port_lines.append(f"    output reg [{width - 1}:0] latched_{ch},\n")
        ports.extend(
            [
                PortSpec(f"sample_{ch}", "input", width, f"sample stream {ch}"),
                PortSpec(f"sample_valid_{ch}", "input", 1, f"valid strobe for stream {ch}"),
                PortSpec(f"latched_{ch}", "output", width, f"last accepted sample of stream {ch}"),
            ]
        )
        channel_blocks.append(
            f"    always @(posedge clk or negedge rst_n) begin\n"
            f"        if (!rst_n) latched_{ch} <= {width}'d0;\n"
            f"        else if (clear) latched_{ch} <= {width}'d0;\n"
            f"        else if (sample_valid_{ch}) latched_{ch} <= sample_{ch};\n"
            f"    end\n"
        )
    any_valid = " || ".join(f"sample_valid_{ch}" for ch in range(channels))
    selected = f"sample_0"
    for ch in range(1, channels):
        selected = f"(sample_valid_{ch} ? sample_{ch} : {selected})"
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire clear,\n"
        + "".join(port_lines)
        + f"    output reg [{width - 1}:0] min_seen,\n"
        f"    output reg [{width - 1}:0] max_seen,\n"
        f"    output reg [15:0] accepted_count,\n"
        f"    output wire any_valid\n"
        f");\n"
        f"    wire [{width - 1}:0] active_sample;\n"
        f"    assign any_valid = {any_valid};\n"
        f"    assign active_sample = {selected};\n"
        + "".join(channel_blocks)
        + f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            min_seen <= {width}'d{max_value};\n"
        f"            max_seen <= {width}'d0;\n"
        f"            accepted_count <= 16'd0;\n"
        f"        end\n"
        f"        else if (clear) begin\n"
        f"            min_seen <= {width}'d{max_value};\n"
        f"            max_seen <= {width}'d0;\n"
        f"            accepted_count <= 16'd0;\n"
        f"        end\n"
        f"        else if (any_valid) begin\n"
        f"            accepted_count <= accepted_count + 16'd1;\n"
        f"            if (active_sample < min_seen) min_seen <= active_sample;\n"
        f"            if (active_sample > max_seen) max_seen <= active_sample;\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    ports.extend(
        [
            PortSpec("min_seen", "output", width, "smallest accepted sample since the last clear"),
            PortSpec("max_seen", "output", width, "largest accepted sample since the last clear"),
            PortSpec("accepted_count", "output", 16, "number of cycles in which any stream was valid"),
            PortSpec("any_valid", "output", 1, "high when at least one stream is valid"),
        ]
    )
    return DesignArtifact(
        name=name,
        family="status_datapath",
        source=source,
        description=f"a {channels}-stream sample monitor with per-stream latches and global min/max statistics",
        ports=ports,
        behaviour=[
            "Each stream latches its sample when its valid strobe is high.",
            "The statistics block picks the highest-numbered valid stream's sample each cycle "
            "and updates the global minimum, maximum and acceptance counter.",
            "clear re-initialises the statistics and the per-stream latches.",
            "any_valid is high whenever at least one stream presents a valid sample.",
        ],
        template_svas=[
            "property p_minmax_order;\n"
            "    @(posedge clk) disable iff (!rst_n) (accepted_count != 16'd0) |-> (min_seen <= max_seen);\n"
            "endproperty\n"
            "a_minmax_order: assert property (p_minmax_order) "
            "else $error(\"min_seen may never exceed max_seen once samples were accepted\");",
            "property p_count_increments;\n"
            "    @(posedge clk) disable iff (!rst_n) (any_valid && !clear) |=> "
            "accepted_count == $past(accepted_count) + 1;\n"
            "endproperty\n"
            "a_count_increments: assert property (p_count_increments) "
            "else $error(\"every accepted cycle must increment the acceptance counter\");",
        ],
        parameters={"width": width, "channels": channels},
    )


FAMILIES: list[DesignFamily] = [
    DesignFamily(
        name="multichannel_accumulator",
        build=build_multichannel_accumulator,
        description="banks of independent accumulators (large designs)",
        parameter_grid=(
            {"channels": 2, "width": 8},
            {"channels": 3, "width": 8},
            {"channels": 4, "width": 8},
            {"channels": 6, "width": 8},
            {"channels": 8, "width": 8},
            {"channels": 9, "width": 8},
            {"channels": 10, "width": 8},
        ),
    ),
    DesignFamily(
        name="pipelined_adder",
        build=build_pipelined_adder,
        description="constant-offset pipelines (medium to large designs)",
        parameter_grid=(
            {"stages": 3, "width": 8},
            {"stages": 5, "width": 8},
            {"stages": 8, "width": 8},
            {"stages": 12, "width": 8},
            {"stages": 16, "width": 8},
        ),
    ),
    DesignFamily(
        name="status_datapath",
        build=build_status_datapath,
        description="monitored multi-stream datapaths",
        parameter_grid=(
            {"width": 8, "channels": 2},
            {"width": 8, "channels": 3},
            {"width": 8, "channels": 4},
            {"width": 8, "channels": 6},
            {"width": 8, "channels": 8},
        ),
    ),
]
