"""Finite-state-machine design families."""

from __future__ import annotations

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec


def build_sequence_detector(name: str, pattern: str = "1011") -> DesignArtifact:
    """A Moore FSM detecting a binary pattern on a serial input (with overlap)."""
    length = len(pattern)
    state_width = max(1, length.bit_length())
    # State k means "the first k bits of the pattern have been seen".
    transitions: list[str] = []
    for state in range(length):
        expected = pattern[state]
        # On the expected bit, advance; otherwise fall back to the longest
        # prefix of the pattern that is a suffix of what has been seen.
        seen = pattern[:state]
        on_match = state + 1
        mismatch_bit = "0" if expected == "1" else "1"
        fallback_source = seen + mismatch_bit
        on_mismatch = 0
        for k in range(min(len(fallback_source), length - 1), 0, -1):
            if fallback_source.endswith(pattern[:k]):
                on_mismatch = k
                break
        transitions.append(
            f"            {state_width}'d{state}: begin\n"
            f"                if (bit_in == 1'b{expected}) state <= {state_width}'d{on_match % (length + 1)};\n"
            f"                else state <= {state_width}'d{on_mismatch};\n"
            f"            end\n"
        )
    # Accepting state: restart, honouring overlap.
    overlap_state = 0
    for k in range(length - 1, 0, -1):
        if pattern.endswith(pattern[:k]):
            overlap_state = k
            break
    transitions.append(
        f"            {state_width}'d{length}: begin\n"
        f"                if (bit_in == 1'b{pattern[overlap_state] if overlap_state < length else pattern[0]}) "
        f"state <= {state_width}'d{overlap_state + 1};\n"
        f"                else state <= {state_width}'d0;\n"
        f"            end\n"
    )
    transition_block = "".join(transitions)
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire bit_valid,\n"
        f"    input wire bit_in,\n"
        f"    output wire detected,\n"
        f"    output reg [{state_width - 1}:0] state\n"
        f");\n"
        f"    assign detected = (state == {state_width}'d{length});\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) state <= {state_width}'d0;\n"
        f"        else if (bit_valid) begin\n"
        f"            case (state)\n"
        f"{transition_block}"
        f"            default: state <= {state_width}'d0;\n"
        f"            endcase\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="sequence_detector",
        source=source,
        description=f"a Moore FSM that detects the serial bit pattern {pattern} with overlap",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("bit_valid", "input", 1, "serial bit valid strobe"),
            PortSpec("bit_in", "input", 1, "serial data bit"),
            PortSpec("detected", "output", 1, f"high while the FSM is in the accepting state (pattern {pattern} seen)"),
            PortSpec("state", "output", state_width, "current FSM state (number of pattern bits matched)"),
        ],
        behaviour=[
            f"The FSM state counts how many leading bits of the pattern {pattern} have been matched.",
            "Bits are consumed only when bit_valid is high.",
            "On a mismatch the FSM falls back to the longest prefix that is still matched.",
            f"detected is asserted while the full pattern has just been matched (state == {length}).",
            "Detection allows overlapping occurrences of the pattern.",
        ],
        template_svas=[
            "property p_state_in_range;\n"
            f"    @(posedge clk) disable iff (!rst_n) state <= {state_width}'d{length};\n"
            "endproperty\n"
            "a_state_in_range: assert property (p_state_in_range) "
            "else $error(\"the FSM state must stay within its defined range\");",
            "property p_detect_means_accepting;\n"
            f"    @(posedge clk) disable iff (!rst_n) detected |-> state == {state_width}'d{length};\n"
            "endproperty\n"
            "a_detect_means_accepting: assert property (p_detect_means_accepting) "
            "else $error(\"detected may only be high in the accepting state\");",
        ],
        parameters={"pattern": pattern},
    )


def build_traffic_light(name: str, green_cycles: int = 5, yellow_cycles: int = 2, red_cycles: int = 4) -> DesignArtifact:
    """A traffic-light controller FSM with per-phase timers."""
    timer_width = max(green_cycles, yellow_cycles, red_cycles).bit_length()
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire enable,\n"
        f"    output reg [1:0] light,\n"
        f"    output reg [{timer_width - 1}:0] timer\n"
        f");\n"
        f"    localparam RED = 2'd0;\n"
        f"    localparam GREEN = 2'd1;\n"
        f"    localparam YELLOW = 2'd2;\n"
        f"    wire phase_done;\n"
        f"    assign phase_done = (timer == {timer_width}'d0);\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            light <= RED;\n"
        f"            timer <= {timer_width}'d{red_cycles - 1};\n"
        f"        end\n"
        f"        else if (enable) begin\n"
        f"            if (phase_done) begin\n"
        f"                case (light)\n"
        f"                    RED: begin\n"
        f"                        light <= GREEN;\n"
        f"                        timer <= {timer_width}'d{green_cycles - 1};\n"
        f"                    end\n"
        f"                    GREEN: begin\n"
        f"                        light <= YELLOW;\n"
        f"                        timer <= {timer_width}'d{yellow_cycles - 1};\n"
        f"                    end\n"
        f"                    YELLOW: begin\n"
        f"                        light <= RED;\n"
        f"                        timer <= {timer_width}'d{red_cycles - 1};\n"
        f"                    end\n"
        f"                    default: begin\n"
        f"                        light <= RED;\n"
        f"                        timer <= {timer_width}'d{red_cycles - 1};\n"
        f"                    end\n"
        f"                endcase\n"
        f"            end\n"
        f"            else timer <= timer - {timer_width}'d1;\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="traffic_light",
        source=source,
        description="a three-phase traffic light controller with per-phase timers",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("enable", "input", 1, "controller enable"),
            PortSpec("light", "output", 2, "current phase: 0 = red, 1 = green, 2 = yellow"),
            PortSpec("timer", "output", timer_width, "cycles remaining in the current phase"),
        ],
        behaviour=[
            f"Reset puts the controller in the red phase with the timer loaded to {red_cycles - 1}.",
            "While enabled, the timer counts down; when it reaches zero the controller advances "
            "to the next phase (red -> green -> yellow -> red) and reloads the timer for that phase.",
            f"Phase durations are {red_cycles} cycles red, {green_cycles} cycles green and {yellow_cycles} cycles yellow.",
            "The phase encoding 2'd3 is illegal and must never be produced.",
        ],
        template_svas=[
            "property p_legal_phase;\n"
            "    @(posedge clk) disable iff (!rst_n) light != 2'd3;\n"
            "endproperty\n"
            "a_legal_phase: assert property (p_legal_phase) "
            "else $error(\"the controller must never enter the illegal phase encoding\");",
            "property p_red_to_green;\n"
            "    @(posedge clk) disable iff (!rst_n) (enable && phase_done && light == 2'd0) |=> light == 2'd1;\n"
            "endproperty\n"
            "a_red_to_green: assert property (p_red_to_green) "
            "else $error(\"red must be followed by green when its timer expires\");",
        ],
        parameters={
            "green_cycles": green_cycles,
            "yellow_cycles": yellow_cycles,
            "red_cycles": red_cycles,
        },
    )


def build_handshake(name: str, timeout: int = 8) -> DesignArtifact:
    """A request/acknowledge handshake master FSM with timeout retry."""
    timer_width = max(1, timeout.bit_length())
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire start,\n"
        f"    input wire ack,\n"
        f"    output reg req,\n"
        f"    output reg busy,\n"
        f"    output reg done,\n"
        f"    output reg [{timer_width - 1}:0] wait_cnt\n"
        f");\n"
        f"    localparam IDLE = 2'd0;\n"
        f"    localparam REQUEST = 2'd1;\n"
        f"    localparam FINISH = 2'd2;\n"
        f"    reg [1:0] state;\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            state <= IDLE;\n"
        f"            req <= 1'b0;\n"
        f"            busy <= 1'b0;\n"
        f"            done <= 1'b0;\n"
        f"            wait_cnt <= {timer_width}'d0;\n"
        f"        end\n"
        f"        else begin\n"
        f"            done <= 1'b0;\n"
        f"            case (state)\n"
        f"                IDLE: begin\n"
        f"                    if (start) begin\n"
        f"                        state <= REQUEST;\n"
        f"                        req <= 1'b1;\n"
        f"                        busy <= 1'b1;\n"
        f"                        wait_cnt <= {timer_width}'d0;\n"
        f"                    end\n"
        f"                end\n"
        f"                REQUEST: begin\n"
        f"                    if (ack) begin\n"
        f"                        state <= FINISH;\n"
        f"                        req <= 1'b0;\n"
        f"                    end\n"
        f"                    else if (wait_cnt == {timer_width}'d{timeout - 1}) begin\n"
        f"                        wait_cnt <= {timer_width}'d0;\n"
        f"                    end\n"
        f"                    else wait_cnt <= wait_cnt + {timer_width}'d1;\n"
        f"                end\n"
        f"                FINISH: begin\n"
        f"                    state <= IDLE;\n"
        f"                    busy <= 1'b0;\n"
        f"                    done <= 1'b1;\n"
        f"                end\n"
        f"                default: state <= IDLE;\n"
        f"            endcase\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="handshake",
        source=source,
        description="a request/acknowledge handshake master with a retry timer",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("start", "input", 1, "start a new transaction when idle"),
            PortSpec("ack", "input", 1, "acknowledge from the peer"),
            PortSpec("req", "output", 1, "request to the peer, held until acknowledged"),
            PortSpec("busy", "output", 1, "high while a transaction is in flight"),
            PortSpec("done", "output", 1, "one-cycle completion pulse"),
            PortSpec("wait_cnt", "output", timer_width, "cycles spent waiting for the acknowledge"),
        ],
        behaviour=[
            "A start pulse while idle raises req and busy and enters the REQUEST state.",
            "req stays asserted until ack is observed; the wait counter tracks the waiting time "
            f"and wraps after {timeout} cycles.",
            "When ack arrives the FSM drops req, then pulses done for one cycle and returns to idle.",
            "busy covers the whole transaction from start to the done pulse.",
        ],
        template_svas=[
            "property p_ack_drops_req;\n"
            "    @(posedge clk) disable iff (!rst_n) (req && ack) |=> !req;\n"
            "endproperty\n"
            "a_ack_drops_req: assert property (p_ack_drops_req) "
            "else $error(\"req must drop in the cycle after it is acknowledged\");",
            "property p_done_after_finish;\n"
            "    @(posedge clk) disable iff (!rst_n) (req && ack) |=> ##1 done;\n"
            "endproperty\n"
            "a_done_after_finish: assert property (p_done_after_finish) "
            "else $error(\"done must pulse two cycles after the acknowledged request\");",
        ],
        parameters={"timeout": timeout},
    )


FAMILIES: list[DesignFamily] = [
    DesignFamily(
        name="sequence_detector",
        build=build_sequence_detector,
        description="serial pattern detectors",
        parameter_grid=(
            {"pattern": "1011"},
            {"pattern": "1101"},
            {"pattern": "111"},
            {"pattern": "10010"},
        ),
    ),
    DesignFamily(
        name="traffic_light",
        build=build_traffic_light,
        description="traffic light controllers",
        parameter_grid=(
            {"green_cycles": 5, "yellow_cycles": 2, "red_cycles": 4},
            {"green_cycles": 8, "yellow_cycles": 3, "red_cycles": 6},
        ),
    ),
    DesignFamily(
        name="handshake",
        build=build_handshake,
        description="request/acknowledge handshake masters",
        parameter_grid=({"timeout": 8}, {"timeout": 4}, {"timeout": 16}),
    ),
]
