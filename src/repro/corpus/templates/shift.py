"""Shift-register-style design families: SIPO, LFSR, edge detection, CDC."""

from __future__ import annotations

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec


def build_shift_register(name: str, width: int = 8, direction: str = "left") -> DesignArtifact:
    """A serial-in parallel-out shift register with a done flag."""
    if direction == "left":
        shift_expr = f"{{data[{width - 2}:0], serial_in}}"
        direction_text = "towards the most significant bit"
    else:
        shift_expr = f"{{serial_in, data[{width - 1}:1]}}"
        direction_text = "towards the least significant bit"
    cnt_width = max(1, width.bit_length())
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire shift_en,\n"
        f"    input wire serial_in,\n"
        f"    output reg [{width - 1}:0] data,\n"
        f"    output reg word_ready\n"
        f");\n"
        f"    reg [{cnt_width - 1}:0] bit_cnt;\n"
        f"    wire last_bit;\n"
        f"    assign last_bit = (bit_cnt == {cnt_width}'d{width - 1}) && shift_en;\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) data <= {width}'d0;\n"
        f"        else if (shift_en) data <= {shift_expr};\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) bit_cnt <= {cnt_width}'d0;\n"
        f"        else if (shift_en) begin\n"
        f"            if (last_bit) bit_cnt <= {cnt_width}'d0;\n"
        f"            else bit_cnt <= bit_cnt + {cnt_width}'d1;\n"
        f"        end\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) word_ready <= 1'b0;\n"
        f"        else if (last_bit) word_ready <= 1'b1;\n"
        f"        else word_ready <= 1'b0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="shift_register",
        source=source,
        description=f"a {width}-bit serial-in parallel-out shift register shifting {direction_text}",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("shift_en", "input", 1, "shift enable"),
            PortSpec("serial_in", "input", 1, "serial data input"),
            PortSpec("data", "output", width, "parallel shift register contents"),
            PortSpec("word_ready", "output", 1, f"pulses after every {width} shifted bits"),
        ],
        behaviour=[
            f"Each enabled cycle shifts serial_in into the register {direction_text}.",
            f"An internal bit counter counts shifted bits; word_ready pulses for one cycle "
            f"after every group of {width} bits.",
            "Reset clears the register, the bit counter and word_ready.",
        ],
        template_svas=[
            "property p_word_ready_after_last_bit;\n"
            "    @(posedge clk) disable iff (!rst_n) last_bit |=> word_ready;\n"
            "endproperty\n"
            "a_word_ready_after_last_bit: assert property (p_word_ready_after_last_bit) "
            "else $error(\"word_ready must pulse after the last bit of a word\");",
        ],
        parameters={"width": width, "direction": direction},
    )


def build_lfsr(name: str, width: int = 8) -> DesignArtifact:
    """A Fibonacci LFSR with a lockup-escape (never all-zero) guarantee."""
    taps = {4: (3, 2), 5: (4, 2), 6: (5, 4), 7: (6, 5), 8: (7, 5), 12: (11, 5), 16: (15, 13)}
    tap_a, tap_b = taps.get(width, (width - 1, width - 2))
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire run,\n"
        f"    output reg [{width - 1}:0] state,\n"
        f"    output wire feedback\n"
        f");\n"
        f"    assign feedback = state[{tap_a}] ^ state[{tap_b}];\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) state <= {width}'d1;\n"
        f"        else if (run) begin\n"
        f"            if (state == {width}'d0) state <= {width}'d1;\n"
        f"            else state <= {{state[{width - 2}:0], feedback}};\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="lfsr",
        source=source,
        description=f"a {width}-bit Fibonacci linear feedback shift register",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("run", "input", 1, "advance enable"),
            PortSpec("state", "output", width, "current LFSR state"),
            PortSpec("feedback", "output", 1, f"XOR of taps {tap_a} and {tap_b}"),
        ],
        behaviour=[
            "Reset seeds the register with the value 1.",
            f"Each enabled cycle shifts the state left by one and inserts the feedback bit "
            f"(state[{tap_a}] XOR state[{tap_b}]) at the least significant position.",
            "If the state ever becomes all-zero it is reseeded with 1 to escape lockup.",
        ],
        template_svas=[
            "property p_never_stuck_at_zero;\n"
            f"    @(posedge clk) disable iff (!rst_n) (run && state == {width}'d0) |=> state != {width}'d0;\n"
            "endproperty\n"
            "a_never_stuck_at_zero: assert property (p_never_stuck_at_zero) "
            "else $error(\"the LFSR must escape the all-zero lockup state\");"
        ],
        parameters={"width": width},
    )


def build_edge_detector(name: str, kind: str = "rising") -> DesignArtifact:
    """Detects rising, falling or both edges of an asynchronous-ish input."""
    if kind == "rising":
        detect_expr = "signal_q1 && !signal_q2"
        description_text = "rising edges"
    elif kind == "falling":
        detect_expr = "!signal_q1 && signal_q2"
        description_text = "falling edges"
    else:
        detect_expr = "signal_q1 ^ signal_q2"
        description_text = "both edges"
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire signal_in,\n"
        f"    output reg edge_pulse,\n"
        f"    output reg [7:0] edge_count\n"
        f");\n"
        f"    reg signal_q1;\n"
        f"    reg signal_q2;\n"
        f"    wire edge_seen;\n"
        f"    assign edge_seen = {detect_expr};\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            signal_q1 <= 1'b0;\n"
        f"            signal_q2 <= 1'b0;\n"
        f"        end\n"
        f"        else begin\n"
        f"            signal_q1 <= signal_in;\n"
        f"            signal_q2 <= signal_q1;\n"
        f"        end\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) edge_pulse <= 1'b0;\n"
        f"        else edge_pulse <= edge_seen;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) edge_count <= 8'd0;\n"
        f"        else if (edge_seen) edge_count <= edge_count + 8'd1;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="edge_detector",
        source=source,
        description=f"an edge detector that reports {description_text} of signal_in",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("signal_in", "input", 1, "monitored input"),
            PortSpec("edge_pulse", "output", 1, "registered one-cycle pulse per detected edge"),
            PortSpec("edge_count", "output", 8, "number of detected edges since reset"),
        ],
        behaviour=[
            "signal_in is sampled through a two-stage register chain (signal_q1, signal_q2).",
            f"An edge is detected when the two stages differ in the pattern for {description_text}.",
            "edge_pulse registers the detection and edge_count increments once per detected edge.",
        ],
        template_svas=[
            "property p_pulse_follows_edge;\n"
            "    @(posedge clk) disable iff (!rst_n) edge_seen |=> edge_pulse;\n"
            "endproperty\n"
            "a_pulse_follows_edge: assert property (p_pulse_follows_edge) "
            "else $error(\"edge_pulse must follow a detected edge by one cycle\");"
        ],
        parameters={"kind": kind},
    )


def build_synchronizer(name: str, stages: int = 3) -> DesignArtifact:
    """A multi-flop synchroniser with a stability counter."""
    stage_decls = "".join(f"    reg sync_{i};\n" for i in range(stages))
    first_stage = "    always @(posedge clk or negedge rst_n) begin\n" \
                  "        if (!rst_n) sync_0 <= 1'b0;\n" \
                  "        else sync_0 <= async_in;\n" \
                  "    end\n"
    other_stages = "".join(
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) sync_{i} <= 1'b0;\n"
        f"        else sync_{i} <= sync_{i - 1};\n"
        f"    end\n"
        for i in range(1, stages)
    )
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire async_in,\n"
        f"    output wire sync_out,\n"
        f"    output reg [7:0] stable_cycles\n"
        f");\n"
        f"{stage_decls}"
        f"    assign sync_out = sync_{stages - 1};\n"
        f"{first_stage}"
        f"{other_stages}"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) stable_cycles <= 8'd0;\n"
        f"        else if (sync_{stages - 1} == sync_{stages - 2}) stable_cycles <= stable_cycles + 8'd1;\n"
        f"        else stable_cycles <= 8'd0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="synchronizer",
        source=source,
        description=f"a {stages}-stage input synchroniser with a stability counter",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("async_in", "input", 1, "asynchronous input"),
            PortSpec("sync_out", "output", 1, "synchronised output (last stage)"),
            PortSpec("stable_cycles", "output", 8, "cycles the last two stages have agreed"),
        ],
        behaviour=[
            f"async_in passes through {stages} flip-flop stages before reaching sync_out.",
            "stable_cycles counts consecutive cycles in which the last two stages agree and "
            "resets to zero whenever they differ.",
            "Reset clears every stage and the counter.",
        ],
        template_svas=[
            "property p_pipeline_order;\n"
            f"    @(posedge clk) disable iff (!rst_n) 1'b1 |=> sync_{stages - 1} == $past(sync_{stages - 2});\n"
            "endproperty\n"
            "a_pipeline_order: assert property (p_pipeline_order) "
            "else $error(\"the last stage must follow the previous stage by one cycle\");"
        ],
        parameters={"stages": stages},
    )


def build_pulse_stretcher(name: str, stretch: int = 4) -> DesignArtifact:
    """Stretches a single-cycle pulse to a fixed number of cycles."""
    width = max(1, stretch.bit_length())
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire pulse_in,\n"
        f"    output reg pulse_out,\n"
        f"    output reg [{width - 1}:0] remaining\n"
        f");\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) remaining <= {width}'d0;\n"
        f"        else if (pulse_in) remaining <= {width}'d{stretch};\n"
        f"        else if (remaining != {width}'d0) remaining <= remaining - {width}'d1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) pulse_out <= 1'b0;\n"
        f"        else if (pulse_in) pulse_out <= 1'b1;\n"
        f"        else if (remaining == {width}'d1) pulse_out <= 1'b0;\n"
        f"        else if (remaining == {width}'d0) pulse_out <= 1'b0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="pulse_stretcher",
        source=source,
        description=f"a pulse stretcher that extends input pulses to {stretch} cycles",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("pulse_in", "input", 1, "single-cycle input pulse"),
            PortSpec("pulse_out", "output", 1, f"output held high for {stretch} cycles per input pulse"),
            PortSpec("remaining", "output", width, "cycles remaining on the current stretched pulse"),
        ],
        behaviour=[
            f"A pulse on pulse_in loads the remaining counter with {stretch} and raises pulse_out.",
            "The counter decrements every cycle while non-zero; pulse_out falls when it runs out.",
            "A new input pulse during an active stretch restarts the counter.",
        ],
        template_svas=[
            "property p_pulse_starts;\n"
            "    @(posedge clk) disable iff (!rst_n) pulse_in |=> pulse_out;\n"
            "endproperty\n"
            "a_pulse_starts: assert property (p_pulse_starts) "
            "else $error(\"pulse_out must rise the cycle after pulse_in\");"
        ],
        parameters={"stretch": stretch},
    )


FAMILIES: list[DesignFamily] = [
    DesignFamily(
        name="shift_register",
        build=build_shift_register,
        description="serial-in parallel-out shift registers",
        parameter_grid=(
            {"width": 8, "direction": "left"},
            {"width": 8, "direction": "right"},
            {"width": 4, "direction": "left"},
            {"width": 16, "direction": "left"},
        ),
    ),
    DesignFamily(
        name="lfsr",
        build=build_lfsr,
        description="Fibonacci LFSRs",
        parameter_grid=({"width": 8}, {"width": 5}, {"width": 12}),
    ),
    DesignFamily(
        name="edge_detector",
        build=build_edge_detector,
        description="edge detectors",
        parameter_grid=({"kind": "rising"}, {"kind": "falling"}, {"kind": "both"}),
    ),
    DesignFamily(
        name="synchronizer",
        build=build_synchronizer,
        description="multi-stage synchronisers",
        parameter_grid=({"stages": 2}, {"stages": 3}, {"stages": 4}),
    ),
    DesignFamily(
        name="pulse_stretcher",
        build=build_pulse_stretcher,
        description="pulse stretchers",
        parameter_grid=({"stretch": 3}, {"stretch": 4}, {"stretch": 6}),
    ),
]
