"""Counter-style design families: counters, dividers, PWM, timeouts."""

from __future__ import annotations

from repro.corpus.metadata import DesignArtifact, DesignFamily, PortSpec


def build_up_counter(name: str, width: int = 8, has_enable: int = 1, saturate: int = 0) -> DesignArtifact:
    """A free-running or enabled up counter that wraps or saturates."""
    max_value = (1 << width) - 1
    enable_port = "    input wire en,\n" if has_enable else ""
    enable_cond = "en" if has_enable else "1'b1"
    if saturate:
        update = (
            f"        else if ({enable_cond}) begin\n"
            f"            if (count == {width}'d{max_value}) count <= {width}'d{max_value};\n"
            f"            else count <= count + {width}'d1;\n"
            f"        end\n"
        )
        behaviour_update = (
            f"When enabled, the counter increments by one each clock cycle and "
            f"saturates at {max_value} instead of wrapping."
        )
    else:
        update = (
            f"        else if ({enable_cond}) count <= count + {width}'d1;\n"
        )
        behaviour_update = (
            "When enabled, the counter increments by one each clock cycle and wraps "
            f"to zero after reaching {max_value}."
        )
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"{enable_port}"
        f"    output reg [{width - 1}:0] count,\n"
        f"    output wire at_max\n"
        f");\n"
        f"    assign at_max = (count == {width}'d{max_value});\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) count <= {width}'d0;\n"
        f"{update}"
        f"    end\n"
        f"endmodule\n"
    )
    ports = [
        PortSpec("clk", "input", 1, "clock, rising edge active"),
        PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
        PortSpec("count", "output", width, "current counter value"),
        PortSpec("at_max", "output", 1, "high when the counter holds its maximum value"),
    ]
    behaviour = [
        "On reset the counter is cleared to zero.",
        behaviour_update,
        "at_max is asserted combinationally whenever count equals its maximum value.",
    ]
    if has_enable:
        ports.insert(2, PortSpec("en", "input", 1, "count enable"))
        behaviour.insert(1, "The counter only changes in cycles where en is high.")
    svas = []
    if has_enable and not saturate:
        svas.append(
            "property p_hold_when_disabled;\n"
            "    @(posedge clk) disable iff (!rst_n) !en |=> count == $past(count);\n"
            "endproperty\n"
            "a_hold_when_disabled: assert property (p_hold_when_disabled) "
            "else $error(\"count must hold its value when en is low\");"
        )
    return DesignArtifact(
        name=name,
        family="up_counter",
        source=source,
        description=f"a {width}-bit up counter"
        + (" with enable" if has_enable else "")
        + (" that saturates at its maximum value" if saturate else ""),
        ports=ports,
        behaviour=behaviour,
        template_svas=svas,
        parameters={"width": width, "has_enable": has_enable, "saturate": saturate},
    )


def build_updown_counter(name: str, width: int = 8) -> DesignArtifact:
    """An up/down counter with load support."""
    max_value = (1 << width) - 1
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire load,\n"
        f"    input wire up,\n"
        f"    input wire [{width - 1}:0] load_value,\n"
        f"    output reg [{width - 1}:0] count,\n"
        f"    output wire is_zero\n"
        f");\n"
        f"    assign is_zero = (count == {width}'d0);\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) count <= {width}'d0;\n"
        f"        else if (load) count <= load_value;\n"
        f"        else if (up) count <= count + {width}'d1;\n"
        f"        else count <= count - {width}'d1;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="updown_counter",
        source=source,
        description=f"a {width}-bit loadable up/down counter",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("load", "input", 1, "synchronous load strobe, takes priority over counting"),
            PortSpec("up", "input", 1, "count direction: 1 counts up, 0 counts down"),
            PortSpec("load_value", "input", width, "value loaded when load is high"),
            PortSpec("count", "output", width, "current counter value"),
            PortSpec("is_zero", "output", 1, "high when the counter value is zero"),
        ],
        behaviour=[
            "Reset clears the counter to zero.",
            "When load is high the counter takes load_value on the next clock edge.",
            "Otherwise the counter increments when up is high and decrements when up is low.",
            "is_zero reflects combinationally whether count equals zero.",
        ],
        template_svas=[
            "property p_load_priority;\n"
            "    @(posedge clk) disable iff (!rst_n) load |=> count == $past(load_value);\n"
            "endproperty\n"
            "a_load_priority: assert property (p_load_priority) "
            "else $error(\"count must take load_value on a load\");"
        ],
        parameters={"width": width},
    )


def build_gray_counter(name: str, width: int = 4) -> DesignArtifact:
    """A binary counter with a registered Gray-coded output."""
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire en,\n"
        f"    output reg [{width - 1}:0] gray,\n"
        f"    output reg [{width - 1}:0] binary\n"
        f");\n"
        f"    wire [{width - 1}:0] next_binary;\n"
        f"    assign next_binary = binary + {width}'d1;\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) begin\n"
        f"            binary <= {width}'d0;\n"
        f"            gray <= {width}'d0;\n"
        f"        end\n"
        f"        else if (en) begin\n"
        f"            binary <= next_binary;\n"
        f"            gray <= next_binary ^ (next_binary >> 1);\n"
        f"        end\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="gray_counter",
        source=source,
        description=f"a {width}-bit Gray-code counter with its binary value exposed",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("en", "input", 1, "count enable"),
            PortSpec("gray", "output", width, "Gray-coded counter value"),
            PortSpec("binary", "output", width, "binary counter value"),
        ],
        behaviour=[
            "Reset clears both the binary and the Gray outputs.",
            "When en is high the binary value increments and the Gray output is the "
            "Gray encoding (binary XOR binary shifted right by one) of the new binary value.",
            "Consecutive Gray values therefore differ in exactly one bit.",
        ],
        template_svas=[
            "property p_gray_matches_binary;\n"
            "    @(posedge clk) disable iff (!rst_n) en |=> gray == (binary ^ (binary >> 1));\n"
            "endproperty\n"
            "a_gray_matches_binary: assert property (p_gray_matches_binary) "
            "else $error(\"gray output must equal the gray encoding of binary\");"
        ],
        parameters={"width": width},
    )


def build_clock_divider(name: str, divide_by: int = 4) -> DesignArtifact:
    """A clock-enable divider producing a single-cycle tick every N cycles."""
    width = max(1, (divide_by - 1).bit_length())
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    output reg tick,\n"
        f"    output reg [{width - 1}:0] phase\n"
        f");\n"
        f"    wire last_phase;\n"
        f"    assign last_phase = (phase == {width}'d{divide_by - 1});\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) phase <= {width}'d0;\n"
        f"        else if (last_phase) phase <= {width}'d0;\n"
        f"        else phase <= phase + {width}'d1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) tick <= 1'b0;\n"
        f"        else if (last_phase) tick <= 1'b1;\n"
        f"        else tick <= 1'b0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="clock_divider",
        source=source,
        description=f"a divide-by-{divide_by} tick generator",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("tick", "output", 1, f"one-cycle pulse every {divide_by} clock cycles"),
            PortSpec("phase", "output", width, "internal phase counter"),
        ],
        behaviour=[
            f"The phase counter counts from 0 to {divide_by - 1} and wraps.",
            "tick is registered and goes high for exactly one cycle, the cycle after "
            "the phase counter reaches its last value.",
            "Reset clears the phase counter and tick.",
        ],
        template_svas=[
            "property p_tick_after_last_phase;\n"
            f"    @(posedge clk) disable iff (!rst_n) (phase == {width}'d{divide_by - 1}) |=> tick;\n"
            "endproperty\n"
            "a_tick_after_last_phase: assert property (p_tick_after_last_phase) "
            "else $error(\"tick must pulse the cycle after the last phase\");"
        ],
        parameters={"divide_by": divide_by},
    )


def build_pwm(name: str, width: int = 8) -> DesignArtifact:
    """A PWM generator with a programmable duty threshold."""
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire [{width - 1}:0] duty,\n"
        f"    output reg pwm_out,\n"
        f"    output reg [{width - 1}:0] counter\n"
        f");\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) counter <= {width}'d0;\n"
        f"        else counter <= counter + {width}'d1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) pwm_out <= 1'b0;\n"
        f"        else if (counter < duty) pwm_out <= 1'b1;\n"
        f"        else pwm_out <= 1'b0;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="pwm",
        source=source,
        description=f"a {width}-bit pulse-width modulator",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("duty", "input", width, "duty-cycle threshold"),
            PortSpec("pwm_out", "output", 1, "modulated output"),
            PortSpec("counter", "output", width, "free-running period counter"),
        ],
        behaviour=[
            "The period counter free-runs and wraps naturally.",
            "pwm_out is registered: it is high in the cycle after counter was below duty "
            "and low otherwise, giving a duty cycle proportional to duty.",
            "Reset clears the counter and drives pwm_out low.",
        ],
        template_svas=[
            "property p_pwm_low_when_zero_duty;\n"
            f"    @(posedge clk) disable iff (!rst_n) (duty == {width}'d0) |=> !pwm_out;\n"
            "endproperty\n"
            "a_pwm_low_when_zero_duty: assert property (p_pwm_low_when_zero_duty) "
            "else $error(\"pwm_out must stay low when duty is zero\");"
        ],
        parameters={"width": width},
    )


def build_timeout(name: str, width: int = 8) -> DesignArtifact:
    """A watchdog-style timeout counter with kick and expiry flag."""
    max_value = (1 << width) - 1
    source = (
        f"module {name} (\n"
        f"    input wire clk,\n"
        f"    input wire rst_n,\n"
        f"    input wire kick,\n"
        f"    input wire [{width - 1}:0] limit,\n"
        f"    output reg [{width - 1}:0] elapsed,\n"
        f"    output reg expired\n"
        f");\n"
        f"    wire at_limit;\n"
        f"    assign at_limit = (elapsed >= limit);\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) elapsed <= {width}'d0;\n"
        f"        else if (kick) elapsed <= {width}'d0;\n"
        f"        else if (!at_limit) elapsed <= elapsed + {width}'d1;\n"
        f"    end\n"
        f"    always @(posedge clk or negedge rst_n) begin\n"
        f"        if (!rst_n) expired <= 1'b0;\n"
        f"        else if (kick) expired <= 1'b0;\n"
        f"        else if (at_limit) expired <= 1'b1;\n"
        f"    end\n"
        f"endmodule\n"
    )
    return DesignArtifact(
        name=name,
        family="timeout",
        source=source,
        description=f"a {width}-bit watchdog timeout counter",
        ports=[
            PortSpec("clk", "input", 1, "clock, rising edge active"),
            PortSpec("rst_n", "input", 1, "asynchronous active-low reset"),
            PortSpec("kick", "input", 1, "restart strobe that clears the elapsed time"),
            PortSpec("limit", "input", width, "timeout threshold"),
            PortSpec("elapsed", "output", width, "cycles elapsed since the last kick"),
            PortSpec("expired", "output", 1, "sticky flag set when elapsed reaches limit"),
        ],
        behaviour=[
            "kick clears the elapsed counter and the expired flag.",
            "Without a kick, elapsed increments every cycle until it reaches limit and then holds.",
            "expired becomes high once elapsed has reached limit and stays high until the next kick or reset.",
        ],
        template_svas=[
            "property p_kick_clears;\n"
            f"    @(posedge clk) disable iff (!rst_n) kick |=> elapsed == {width}'d0;\n"
            "endproperty\n"
            "a_kick_clears: assert property (p_kick_clears) "
            "else $error(\"a kick must clear the elapsed counter\");"
        ],
        parameters={"width": width},
    )


FAMILIES: list[DesignFamily] = [
    DesignFamily(
        name="up_counter",
        build=build_up_counter,
        description="up counters with enable / saturation options",
        parameter_grid=(
            {"width": 4, "has_enable": 1, "saturate": 0},
            {"width": 8, "has_enable": 1, "saturate": 0},
            {"width": 8, "has_enable": 0, "saturate": 0},
            {"width": 6, "has_enable": 1, "saturate": 1},
            {"width": 12, "has_enable": 1, "saturate": 1},
        ),
    ),
    DesignFamily(
        name="updown_counter",
        build=build_updown_counter,
        description="loadable up/down counters",
        parameter_grid=({"width": 4}, {"width": 8}, {"width": 10}),
    ),
    DesignFamily(
        name="gray_counter",
        build=build_gray_counter,
        description="Gray-code counters",
        parameter_grid=({"width": 4}, {"width": 6}, {"width": 8}),
    ),
    DesignFamily(
        name="clock_divider",
        build=build_clock_divider,
        description="clock tick dividers",
        parameter_grid=({"divide_by": 3}, {"divide_by": 4}, {"divide_by": 6}, {"divide_by": 10}),
    ),
    DesignFamily(
        name="pwm",
        build=build_pwm,
        description="pulse-width modulators",
        parameter_grid=({"width": 6}, {"width": 8}),
    ),
    DesignFamily(
        name="timeout",
        build=build_timeout,
        description="watchdog timeout counters",
        parameter_grid=({"width": 6}, {"width": 8}, {"width": 10}),
    ),
]
