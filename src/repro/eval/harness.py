"""The SVA-Eval-Machine benchmark harness.

Runs one repair engine over the held-out ``sva_eval_machine`` split:

1. for every case, ask the engine for its ``k`` best distinct candidate
   repairs (:meth:`~repro.model.response.RepairEngine.propose_topk`),
2. verify every candidate semantically on fresh stimulus seeds
   (:mod:`repro.eval.verifier`, fanned out by :mod:`repro.eval.executor`),
3. score pass@1 / pass@k and break the numbers down by bug taxonomy,
   template family and length bin -- the axes of the paper's Tables III/IV.

pass@k here is the *ranked* variant: a case counts for pass@k when any of
the engine's top-k distinct candidates verifies.  Sampling seeds and
verification seeds are both derived per case name, so the report is
identical for any worker count, case order, or cache state.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.dataaug.datasets import SvaBugEntry
from repro.eval.executor import VerificationJob, run_verification_jobs
from repro.eval.verifier import (
    DEFAULT_SEED_COUNT,
    CandidateFix,
    RepairVerdict,
    derive_verification_seeds,
)
from repro.model.case import RepairCase
from repro.model.response import RepairEngine
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    get_registry,
    resolve_trace_path,
    set_registry,
    set_tracer,
    write_trace,
)


@dataclass
class EvalConfig:
    """Knobs for one benchmark run."""

    seed: int = 2027
    ks: tuple[int, ...] = (1, 5)  # report pass@k for each; max(ks) candidates are drawn
    samples: int = 20  # sampling budget for engines without an exact top-k
    temperature: float = 0.2
    verification_seeds: int = DEFAULT_SEED_COUNT
    cycles: Optional[int] = None  # None: use each entry's own stimulus_cycles
    workers: int = 1
    cache_dir: Optional[Path] = None
    #: Assertion-checker backend the verification workers use
    #: ("auto" | "compiled" | "interp"); outcomes are backend-independent,
    #: so this only changes wall time (or forces the differential oracle).
    checker_backend: str = "auto"
    #: Failure policy for verification jobs: "raise" aborts the run on the
    #: first infrastructure failure (historical behaviour), "quarantine"
    #: records ``infra_error`` verdicts for the affected case and keeps going.
    on_error: str = "raise"
    #: Per-case verification timeout in seconds (None: unlimited).
    job_timeout: Optional[float] = None
    #: Executions charged to a case's job before it is quarantined/raised.
    max_attempts: int = 1
    #: Write a JSONL trace of the run here (``REPRO_TRACE`` is the env
    #: fallback).  Telemetry only: the report is byte-identical with tracing
    #: on or off.
    trace_path: Optional[str] = None
    #: Compiled-artifact cache mode for the verification workers
    #: ("incremental" | "off") and the directory of its shared on-disk
    #: elaboration tier (None: memory-only).  Wall-time only: reports are
    #: byte-identical for either mode and any tier.
    artifact_mode: str = "incremental"
    artifact_dir: Optional[Path] = None
    #: Static screening mode for verification workers ("off" | "cone" |
    #: "lint" | "full"; see :class:`~repro.eval.verifier.VerifierConfig`).
    #: The cone tier is verdict-preserving by construction; screened runs
    #: additionally mark each verdict's ``provenance``.
    static_screen: str = "off"

    @property
    def k(self) -> int:
        return max(self.ks)


@dataclass
class CandidateOutcome:
    """One verified candidate repair of one case."""

    rank: int  # 1-based rank in the engine's candidate list
    line_number: int
    fixed_line: str
    confidence: float
    verdict: RepairVerdict

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "line_number": self.line_number,
            "fixed_line": self.fixed_line,
            "confidence": round(self.confidence, 6),
            "verdict": self.verdict.to_dict(),
        }


@dataclass
class CaseResult:
    """Every verified candidate of one evaluation case."""

    name: str
    design_name: str
    family: str
    length_bin: str
    bug_type_labels: list[str]
    verification_seeds: tuple[int, ...]
    mining_seed: int
    candidates: list[CandidateOutcome] = field(default_factory=list)

    @property
    def infra_error(self) -> bool:
        """True when verification infrastructure failed for this case.

        Such a case says nothing about the engine, so scoring drops it from
        every pass@k denominator (the count is still reported).
        """
        return any(
            candidate.verdict.status == "infra_error" for candidate in self.candidates
        )

    @property
    def first_pass_rank(self) -> Optional[int]:
        """Rank of the best candidate that *non-vacuously* passes.

        A verdict only counts when at least one assertion was exercised:
        a rewrite that merely stops every assertion from firing (or removes
        it) simulates cleanly but repairs nothing.
        """
        for candidate in self.candidates:
            if candidate.verdict.passed and candidate.verdict.exercised:
                return candidate.rank
        return None

    def passed_at(self, k: int) -> bool:
        rank = self.first_pass_rank
        return rank is not None and rank <= k

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "design_name": self.design_name,
            "family": self.family,
            "length_bin": self.length_bin,
            "bug_type_labels": list(self.bug_type_labels),
            "verification_seeds": list(self.verification_seeds),
            "mining_seed": self.mining_seed,
            "first_pass_rank": self.first_pass_rank,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
        }


def _pass_rates(cases: Sequence[CaseResult], ks: Sequence[int]) -> dict[str, float]:
    scored = [case for case in cases if not case.infra_error]
    if not scored:
        return {f"pass@{k}": 0.0 for k in ks}
    return {
        f"pass@{k}": round(sum(case.passed_at(k) for case in scored) / len(scored), 4)
        for k in ks
    }


def _breakdown(
    cases: Sequence[CaseResult], ks: Sequence[int], group_of
) -> dict[str, dict]:
    groups: dict[str, list[CaseResult]] = {}
    for case in cases:
        for label in group_of(case):
            groups.setdefault(label, []).append(case)
    return {
        label: {"cases": len(members), **_pass_rates(members, ks)}
        for label, members in sorted(groups.items())
    }


@dataclass
class EvalReport:
    """The full result of one benchmark run."""

    engine: str
    ks: tuple[int, ...]
    cases: list[CaseResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Corrupt verdict-cache entries hit across workers (telemetry only;
    #: like the hit/miss counters, never part of :meth:`summary`).
    cache_corrupt: int = 0

    @property
    def pass_rates(self) -> dict[str, float]:
        return _pass_rates(self.cases, self.ks)

    def verdict_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for case in self.cases:
            for candidate in case.candidates:
                status = candidate.verdict.status
                histogram[status] = histogram.get(status, 0) + 1
        return dict(sorted(histogram.items()))

    def summary(self) -> dict:
        """The machine-readable summary (schema ``repro_eval/v1``).

        Cache traffic is deliberately *not* part of the summary: the summary
        of a run must be byte-identical whether the verdict cache was cold or
        warm (use :attr:`cache_hits` / :attr:`cache_misses` for telemetry).
        """
        return {
            "schema": "repro_eval/v1",
            "engine": self.engine,
            "cases": len(self.cases),
            "infra_error_cases": sum(case.infra_error for case in self.cases),
            "candidates_verified": sum(len(case.candidates) for case in self.cases),
            **self.pass_rates,
            "verdicts": self.verdict_histogram(),
            "by_bug_type": _breakdown(self.cases, self.ks, lambda c: c.bug_type_labels),
            "by_family": _breakdown(self.cases, self.ks, lambda c: [c.family]),
            "by_length_bin": _breakdown(self.cases, self.ks, lambda c: [c.length_bin]),
        }


class EvalHarness:
    """Evaluates repair engines on held-out SVA-Bug entries."""

    def __init__(self, config: Optional[EvalConfig] = None, fault_plan=None, tracer=None):
        self.config = config or EvalConfig()
        #: Deterministic fault injection for verification jobs (tests only).
        self._fault_plan = fault_plan
        #: Tracer ownership mirrors the pipeline: an explicit ``tracer``
        #: means the caller writes the trace; otherwise ``config.trace_path``
        #: / ``REPRO_TRACE`` make this harness own one and write it after
        #: :meth:`run`.
        self._owned_trace_path = (
            resolve_trace_path(self.config.trace_path) if tracer is None else None
        )
        self._tracer = tracer if tracer is not None else (
            Tracer() if self._owned_trace_path else None
        )

    def _case_seed(self, name: str) -> int:
        return (zlib.crc32(name.encode()) ^ self.config.seed) & 0x7FFFFFFF

    def run(self, engine: RepairEngine, entries: Sequence[SvaBugEntry]) -> EvalReport:
        """Sample, verify and score ``engine`` over ``entries``."""
        if self._tracer is None:
            return self._run(engine, entries)
        previous_tracer = set_tracer(self._tracer)
        previous_registry = None
        if self._owned_trace_path:
            previous_registry = set_registry(MetricsRegistry())
        try:
            with self._tracer.span("eval", engine=engine.name, cases=len(entries)):
                report = self._run(engine, entries)
        finally:
            registry = get_registry()
            set_tracer(previous_tracer)
            if previous_registry is not None:
                set_registry(previous_registry)
            if self._owned_trace_path:
                write_trace(
                    self._owned_trace_path,
                    self._tracer,
                    metrics=registry,
                    meta={"kind": "eval"},
                )
        return report

    def _run(self, engine: RepairEngine, entries: Sequence[SvaBugEntry]) -> EvalReport:
        config = self.config
        tracer = self._tracer if self._tracer is not None else NULL_TRACER
        ordered = sorted(entries, key=lambda entry: entry.name)

        propose_span = tracer.span("eval.propose")
        propose_span.__enter__()
        jobs: list[VerificationJob] = []
        skeletons: list[CaseResult] = []
        responses_per_case: list[list] = []
        for entry in ordered:
            case = RepairCase.from_entry(entry)
            responses = engine.propose_topk(
                case,
                k=config.k,
                samples=config.samples,
                temperature=config.temperature,
                seed=self._case_seed(entry.name),
            )
            seeds = derive_verification_seeds(
                entry.name,
                entry.stimulus_seed,
                count=config.verification_seeds,
                base_seed=config.seed,
            )
            cycles = config.cycles if config.cycles is not None else entry.stimulus_cycles
            fixes = tuple(
                CandidateFix(
                    line_number=response.line_number,
                    fixed_line=response.fixed_line,
                    bug_line=response.bug_line,
                )
                for response in responses
            )
            jobs.append(
                VerificationJob(
                    case_name=entry.name,
                    buggy_source=entry.buggy_source,
                    fixes=fixes,
                    seeds=seeds,
                    cycles=cycles,
                    checker_backend=config.checker_backend,
                    static_screen=config.static_screen,
                )
            )
            responses_per_case.append(responses)
            skeletons.append(
                CaseResult(
                    name=entry.name,
                    design_name=entry.design_name,
                    family=entry.family,
                    length_bin=entry.length_bin,
                    bug_type_labels=entry.bug_type_labels,
                    verification_seeds=seeds,
                    mining_seed=entry.stimulus_seed,
                )
            )

        propose_span.set(jobs=len(jobs))
        propose_span.__exit__(None, None, None)

        with tracer.span("eval.verify", jobs=len(jobs)):
            shards = run_verification_jobs(
                jobs,
                workers=config.workers,
                cache_dir=config.cache_dir,
                on_error=config.on_error,
                job_timeout=config.job_timeout,
                max_attempts=config.max_attempts,
                fault_plan=self._fault_plan,
                tracer=self._tracer,
                artifact_dir=config.artifact_dir,
                artifact_mode=config.artifact_mode,
            )

        report = EvalReport(engine=engine.name, ks=config.ks)
        with tracer.span("eval.score"):
            for skeleton, responses, shard in zip(skeletons, responses_per_case, shards):
                for rank, (response, verdict) in enumerate(
                    zip(responses, shard.verdicts), start=1
                ):
                    skeleton.candidates.append(
                        CandidateOutcome(
                            rank=rank,
                            line_number=response.line_number,
                            fixed_line=response.fixed_line.strip(),
                            confidence=response.confidence,
                            verdict=verdict,
                        )
                    )
                report.cache_hits += shard.cache_hits
                report.cache_misses += shard.cache_misses
                report.cache_corrupt += shard.cache_corrupt
                report.cases.append(skeleton)
        return report
