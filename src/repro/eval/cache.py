"""Content-addressed on-disk verdict cache.

Every verification verdict is a pure function of (buggy source, fix, stimulus
seeds, cycle budget, verifier version), so verdicts are stored under the
SHA-256 of exactly those inputs: re-running an evaluation only simulates what
changed, and concurrent worker processes share one cache directory safely
(writes are atomic renames; a lost race simply rewrites identical content).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Sequence


def verdict_key(
    patched_source: str,
    seeds: Sequence[int],
    cycles: int,
    reset_cycles: int,
    version: str,
) -> str:
    """The content address of one verification verdict.

    Keyed on the *patched* source rather than (buggy source, fix): the
    patched text is what actually gets compiled and simulated, so two fixes
    that resolve to different patch sites can never alias, and two fixes
    that produce identical text share one verdict by construction.
    """
    digest = hashlib.sha256()
    for part in (
        version,
        patched_source,
        ",".join(str(seed) for seed in seeds),
        str(cycles),
        str(reset_cycles),
    ):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class VerdictCache:
    """A directory of ``<key-prefix>/<key>.json`` verdict files."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored verdict payload, or ``None`` on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Persist a verdict (atomic: visible either fully or not at all)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.tmp{os.getpid()}")
        temporary.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temporary, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
