"""Content-addressed on-disk verdict cache.

Every verification verdict is a pure function of (buggy source, fix, stimulus
seeds, cycle budget, verifier version), so verdicts are stored under the
SHA-256 of exactly those inputs: re-running an evaluation only simulates what
changed, and concurrent worker processes share one cache directory safely.

The storage itself is :class:`repro.runtime.cache.ResultCache` -- the same
generic store the pipeline's Stage-2 result cache uses; this module only
contributes the verdict-specific key recipe.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.cache import ResultCache, content_key


def verdict_key(
    patched_source: str,
    seeds: Sequence[int],
    cycles: int,
    reset_cycles: int,
    version: str,
) -> str:
    """The content address of one verification verdict.

    Keyed on the *patched* source rather than (buggy source, fix): the
    patched text is what actually gets compiled and simulated, so two fixes
    that resolve to different patch sites can never alias, and two fixes
    that produce identical text share one verdict by construction.
    """
    return content_key(
        version,
        patched_source,
        ",".join(str(seed) for seed in seeds),
        str(cycles),
        str(reset_cycles),
    )


class VerdictCache(ResultCache):
    """A directory of ``<key-prefix>/<key>.json`` verdict files."""
