"""Machine-readable evaluation reports.

One benchmark run produces three artefacts in the output directory:

* ``eval_cases.jsonl``  -- one JSON object per evaluation case with every
  verified candidate and its verdict (the audit trail);
* ``eval_summary.json`` -- the aggregate summary (schema ``repro_eval/v1``):
  pass@k plus the taxonomy / family / length-bin breakdowns;
* ``eval_split.jsonl``  -- optionally, the held-out entries themselves, so a
  benchmark run is reproducible without re-running the pipeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.dataaug.datasets import SvaBugEntry
from repro.eval.harness import EvalReport


def write_reports(
    report: EvalReport,
    output_dir: Path | str,
    split: Optional[Sequence[SvaBugEntry]] = None,
) -> dict[str, Path]:
    """Write the JSONL / JSON artefacts for one run; returns their paths."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    cases_path = output_dir / "eval_cases.jsonl"
    with cases_path.open("w") as stream:
        for case in report.cases:
            stream.write(json.dumps(case.to_dict(), sort_keys=True) + "\n")

    summary_path = output_dir / "eval_summary.json"
    summary_path.write_text(json.dumps(report.summary(), indent=2, sort_keys=True) + "\n")

    paths = {"cases": cases_path, "summary": summary_path}
    if split is not None:
        split_path = output_dir / "eval_split.jsonl"
        with split_path.open("w") as stream:
            for entry in sorted(split, key=lambda e: e.name):
                stream.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        paths["split"] = split_path
    return paths


def read_split(path: Path | str) -> list[SvaBugEntry]:
    """Load a persisted ``eval_split.jsonl`` back into dataset entries."""
    entries = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            entries.append(SvaBugEntry.from_dict(json.loads(line)))
    return entries
