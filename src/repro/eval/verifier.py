"""The semantic repair verifier (the "re-run the EDA tools" half of Fig. 2).

A candidate repair is judged the way a verification engineer would judge it:
apply the suggested line rewrite to the buggy source, re-compile, re-simulate
on fresh stimulus, and re-check every assertion.  The result is a structured
:class:`RepairVerdict` -- compile failure, simulation failure, assertion
failure (with the failing assertions and cycle), or pass.

Verification stimulus is always *independent* of the stimulus the bug was
mined with: :func:`derive_verification_seeds` derives fresh seeds from the
case name and never returns the mining seed, mirroring the Stage-2 rule that
a mined invariant must be validated on a trace it was not mined from.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.eval.cache import VerdictCache, verdict_key
from repro.hdl.lint import compile_source
from repro.obs import get_registry, phase
from repro.hdl.source import SourceFile, lines_equivalent
from repro.sim.compile import CompileError
from repro.sim.engine import SimulationError, Simulator, SimulatorOptions
from repro.sim.stimulus import StimulusGenerator
from repro.sva.checker import CheckerBackend

#: Bumped whenever verdict semantics change: keys old cache entries out.
#: v2: ``$past`` depth arguments are constant-folded with parameters and
#: pre-trace ``$past`` unknowns carry the argument expression's real width.
VERIFIER_VERSION = "repro_eval_verifier/v2"

#: Default number of independent stimulus seeds a fix must survive.
DEFAULT_SEED_COUNT = 2


def derive_verification_seeds(
    case_name: str, mining_seed: int, count: int = DEFAULT_SEED_COUNT, base_seed: int = 2027
) -> tuple[int, ...]:
    """Fresh, deterministic stimulus seeds for verifying one case.

    The seeds depend only on the case name and ``base_seed`` (so they are
    identical for any worker count and case order) and are guaranteed to
    differ from ``mining_seed``: verifying a repair on the very stimulus the
    bug was mined with would leak the counterexample into the check.
    """
    seeds: list[int] = []
    raw = zlib.crc32(case_name.encode()) ^ (base_seed * 0x9E3779B1 & 0xFFFFFFFF)
    offset = 0
    while len(seeds) < count:
        candidate = (raw + 1_000_003 * offset) & 0x7FFFFFFF
        offset += 1
        if candidate != mining_seed and candidate not in seeds:
            seeds.append(candidate)
    return tuple(seeds)


@dataclass(frozen=True)
class CandidateFix:
    """One candidate repair: a single-line rewrite of the buggy source."""

    line_number: int
    fixed_line: str
    bug_line: str = ""  # the line the fix claims to replace (used to relocate)


@dataclass
class RepairVerdict:
    """Structured outcome of verifying one candidate fix."""

    #: "pass" | "compile_fail" | "sim_error" | "assertion_fail" | "not_applicable",
    #: plus "infra_error" -- synthesised by :mod:`repro.eval.executor` when the
    #: verification *infrastructure* failed (worker crash/hang/exception under
    #: ``on_error="quarantine"``); unlike "sim_error" it says nothing about the
    #: candidate repair, and scoring excludes such cases from pass@k.
    status: str
    seeds: tuple[int, ...] = ()
    cycles: int = 0
    applied_line_number: int = 0
    failing_assertions: list[str] = field(default_factory=list)
    failing_seed: Optional[int] = None
    first_failure_cycle: Optional[int] = None
    exercised: bool = False  # some assertion's antecedent matched on some seed
    detail: str = ""
    #: How the verdict was produced: "simulated" (the full compile +
    #: simulate + check loop), "cone_skip" (the static screen proved the
    #: edit invisible to every assertion and returned the memoised base
    #: verdict), or "static_reject" (the lint screen rejected the candidate
    #: without simulating; ``status`` is then also "static_reject").
    provenance: str = "simulated"

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "seeds": list(self.seeds),
            "cycles": self.cycles,
            "applied_line_number": self.applied_line_number,
            "failing_assertions": list(self.failing_assertions),
            "failing_seed": self.failing_seed,
            "first_failure_cycle": self.first_failure_cycle,
            "exercised": self.exercised,
            "detail": self.detail,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RepairVerdict":
        return cls(
            status=str(payload["status"]),
            seeds=tuple(payload.get("seeds", ())),
            cycles=int(payload.get("cycles", 0)),
            applied_line_number=int(payload.get("applied_line_number", 0)),
            failing_assertions=list(payload.get("failing_assertions", [])),
            failing_seed=payload.get("failing_seed"),
            first_failure_cycle=payload.get("first_failure_cycle"),
            exercised=bool(payload.get("exercised", False)),
            detail=str(payload.get("detail", "")),
            provenance=str(payload.get("provenance", "simulated")),
        )


@dataclass(frozen=True)
class VerifierConfig:
    """Stimulus sizing and backend selection for verification runs."""

    cycles: int = 48
    reset_cycles: int = 2
    #: Assertion-checker backend: "auto" (compiled with tree-walking
    #: fallback), "compiled" or "interp" (the differential oracle).
    checker_backend: str = "auto"
    #: "incremental" routes compilation through the artifact cache and
    #: relowers each candidate against its case's buggy base; "off" compiles
    #: every candidate from scratch (the historical path, kept for the
    #: benchmark's cold leg and as an escape hatch).  Deliberately *not*
    #: part of the verdict cache key: both modes are byte-identical in
    #: verdicts, pinned by the differential tests.
    artifact_mode: str = "incremental"
    #: Static screening in front of the simulator:
    #:
    #: * ``"off"`` -- every candidate simulates (the historical path).
    #: * ``"cone"`` -- candidates whose edit is provably outside every
    #:   assertion's cone of influence return the case's memoised base
    #:   verdict without simulating (sound: see
    #:   :func:`repro.analyze.cone.cone_screen`).
    #: * ``"lint"`` -- candidates that *introduce* error-class structural
    #:   breakage (fresh combinational loop, newly undriven signal feeding
    #:   an assertion cone) are rejected with status ``static_reject``
    #:   without simulating (validated by the screened benchmark leg).
    #: * ``"full"`` -- cone first, then lint.
    #:
    #: Any mode other than "off" gets its own verdict-cache keyspace, so
    #: screened outcomes can never be served to unscreened runs.
    static_screen: str = "off"


class SemanticVerifier:
    """Applies candidate fixes and re-runs the full check loop.

    Verdicts are memoised in-process and, when a :class:`VerdictCache` is
    supplied, persisted content-addressed on disk so repeated evaluations
    (and other worker processes) skip the simulation entirely.  Compiled
    artifacts (lowered simulators and checkers) come from an
    :class:`~repro.artifacts.ArtifactStore`: each case's buggy base is
    compiled once, and every candidate -- a one-line mutant of it -- is
    relowered incrementally against that base.
    """

    def __init__(
        self,
        config: Optional[VerifierConfig] = None,
        cache: Optional[VerdictCache] = None,
        artifacts=None,
    ):
        self.config = config or VerifierConfig()
        self.cache = cache
        self._memo: dict[str, RepairVerdict] = {}
        self.artifacts = None
        if self.config.artifact_mode != "off":
            if artifacts is None:
                from repro.artifacts import default_store

                artifacts = default_store()
            self.artifacts = artifacts
        #: Per buggy source: its (compiled design, checker) base artifacts,
        #: either of which may be None (uncompilable source / no base yet).
        self._bases: dict[str, tuple] = {}
        #: Screening state: elaborated designs per source text and the base
        #: (unpatched) verdict per (source, seeds, cycles) -- what cone_skip
        #: returns in place of simulating an invisible edit.
        self._designs: dict[str, object] = {}
        self._base_verdicts: dict[tuple, RepairVerdict] = {}

    # ------------------------------------------------------------------ #
    # fix application
    # ------------------------------------------------------------------ #

    def apply_fix(self, buggy_source: str, fix: CandidateFix) -> tuple[Optional[str], int, str]:
        """Locate the target line and splice in the rewrite.

        Returns ``(patched_source, line_number, detail)``; ``patched_source``
        is ``None`` when no plausible target line exists.
        """
        source = SourceFile(buggy_source)
        line_number = fix.line_number
        in_range = 1 <= line_number <= source.line_count
        if fix.bug_line.strip():
            if not in_range or not lines_equivalent(source.line(line_number), fix.bug_line):
                located = source.find_line(fix.bug_line)
                if located:
                    line_number = located
                    in_range = True
        if not in_range:
            return None, 0, f"line {fix.line_number} is outside the source"
        patched = source.with_line_replaced(line_number, fix.fixed_line)
        return patched.text, line_number, ""

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def verify(
        self,
        buggy_source: str,
        fix: CandidateFix,
        seeds: Sequence[int],
        cycles: Optional[int] = None,
    ) -> RepairVerdict:
        """Full verdict for one fix, via the caches when possible.

        Fix application (cheap, pure text) always runs; only the simulation
        verdict of the resulting patched source is cached, so fixes that
        relocate to different lines can never share an entry.  ``cycles``
        overrides the config's stimulus length for this call (callers with
        per-case cycle budgets share one verifier; the cache key includes
        the cycle count).
        """
        seeds = tuple(seeds)
        cycles = self.config.cycles if cycles is None else cycles
        patched, line_number, detail = self.apply_fix(buggy_source, fix)
        if patched is None:
            return RepairVerdict(
                status="not_applicable", seeds=seeds, cycles=cycles, detail=detail
            )
        # A forced backend gets its own cache keyspace: re-running with the
        # "interp" differential oracle must actually re-check, not be served
        # a compiled run's cached verdicts (which would mask any divergence).
        # Screened runs are partitioned the same way: a cone_skip or
        # static_reject entry must never answer an unscreened lookup.
        version = self._unscreened_version()
        if self.config.static_screen != "off":
            version = f"{version}+screen:{self.config.static_screen}"
        key = verdict_key(patched, seeds, cycles, self.config.reset_cycles, version)
        verdict = self._memo.get(key)
        if verdict is not None:
            get_registry().inc("eval.memo.hits")
        if verdict is None and self.cache is not None:
            stored = self.cache.get(key)
            if stored is not None:
                get_registry().inc("eval.verdict_cache.hits")
                verdict = RepairVerdict.from_dict(stored)
                self._memo[key] = verdict
            else:
                get_registry().inc("eval.verdict_cache.misses")
        if verdict is None and self.config.static_screen != "off":
            verdict = self._static_screen(buggy_source, patched, seeds, cycles)
            if verdict is not None:
                self._memo[key] = verdict
                if self.cache is not None:
                    self.cache.put(key, verdict.to_dict())
        if verdict is None:
            base = self._base_artifacts(buggy_source)
            verdict = self.verify_source(patched, seeds, cycles=cycles, base=base)
            self._memo[key] = verdict
            if self.cache is not None:
                self.cache.put(key, verdict.to_dict())
        # The patch site is call-local metadata, not part of the cached verdict.
        verdict = RepairVerdict.from_dict(verdict.to_dict())
        verdict.applied_line_number = line_number
        return verdict

    def _base_artifacts(self, buggy_source: str) -> tuple:
        """The buggy base's (compiled design, checker), compiled once per case.

        Candidates are one-line mutants of their case's buggy source, so
        these artifacts are the relowering base for every candidate of the
        case.  Either element may be ``None`` (artifact mode off, or the
        base itself does not compile) -- candidates then lower fully, which
        is always correct.
        """
        if self.artifacts is None:
            return (None, None)
        cached = self._bases.get(buggy_source)
        if cached is not None:
            return cached
        base_compiled = None
        base_checker = None
        design, _ = self.artifacts.elaborate_source(buggy_source)
        if design is not None:
            base_compiled = self.artifacts.compiled_design(design)
            try:
                base_checker = self.artifacts.checker(
                    design, backend=self.config.checker_backend
                )
            except CompileError:
                base_checker = None
        result = (base_compiled, base_checker)
        self._bases[buggy_source] = result
        return result

    # ------------------------------------------------------------------ #
    # static screening (VerifierConfig.static_screen != "off")
    # ------------------------------------------------------------------ #

    def _unscreened_version(self) -> str:
        """The verdict-key version an unscreened run of this config uses."""
        if self.config.checker_backend != "auto":
            return f"{VERIFIER_VERSION}+{self.config.checker_backend}"
        return VERIFIER_VERSION

    def _design_of(self, source: str):
        """Elaborate ``source`` for screening, memoised per source text."""
        if source in self._designs:
            return self._designs[source]
        if self.artifacts is not None:
            design, _ = self.artifacts.elaborate_source(source, persist=False)
        else:
            result = compile_source(source)
            design = result.design if result.ok else None
        self._designs[source] = design
        return design

    def _dfg_of(self, design):
        if self.artifacts is not None:
            return self.artifacts.dataflow(design)
        from repro.analyze.dfg import SignalDfg

        return SignalDfg(design)

    def _base_verdict(self, buggy_source: str, seeds: tuple, cycles: int) -> RepairVerdict:
        """The buggy base's own simulated verdict (what cone_skip returns).

        Produced by the same unscreened pipeline a no-op candidate would
        run, and cached under the *unscreened* keyspace: it is a genuine
        simulation result, shared with (and byte-identical to) what a
        ``static_screen="off"`` run of the same source would compute.
        """
        memo_key = (buggy_source, seeds, cycles)
        verdict = self._base_verdicts.get(memo_key)
        if verdict is not None:
            return verdict
        key = verdict_key(
            buggy_source, seeds, cycles, self.config.reset_cycles, self._unscreened_version()
        )
        if self.cache is not None:
            stored = self.cache.get(key)
            if stored is not None:
                get_registry().inc("eval.verdict_cache.hits")
                verdict = RepairVerdict.from_dict(stored)
        if verdict is None:
            base = self._base_artifacts(buggy_source)
            verdict = self.verify_source(buggy_source, seeds, cycles=cycles, base=base)
            if self.cache is not None:
                self.cache.put(key, verdict.to_dict())
        self._base_verdicts[memo_key] = verdict
        return verdict

    def _static_screen(
        self, buggy_source: str, patched_source: str, seeds: tuple, cycles: int
    ) -> Optional[RepairVerdict]:
        """Try to decide the candidate without simulating it.

        Returns ``None`` when the screen cannot decide (the candidate then
        takes the normal simulation path, whose verdict is byte-identical
        to an unscreened run's).  The cone tier is sound; the lint tier is
        validated empirically by the screened benchmark leg.
        """
        from repro.analyze.cone import cone_screen, lint_screen

        mode = self.config.static_screen
        base_design = self._design_of(buggy_source)
        patched_design = self._design_of(patched_source)
        if base_design is None or patched_design is None:
            # Compile failures keep the normal path so details stay
            # byte-identical to unscreened runs.
            return None
        registry = get_registry()
        with phase("verify.screen"):
            base_dfg = self._dfg_of(base_design)
            patched_dfg = self._dfg_of(patched_design)
            if mode in ("cone", "full"):
                decision = cone_screen(base_dfg, patched_dfg)
                if decision.overlap:
                    registry.inc("analyze.cone.overlap")
                if decision.skip:
                    base_verdict = self._base_verdict(buggy_source, seeds, cycles)
                    # Refuse to skip onto anything but a clean simulation
                    # outcome: a sim_error or compile_fail base says the
                    # *base* is broken, not that the equality argument holds.
                    if base_verdict.status in ("pass", "assertion_fail"):
                        registry.inc("analyze.cone.skip")
                        verdict = RepairVerdict.from_dict(base_verdict.to_dict())
                        verdict.provenance = "cone_skip"
                        return verdict
            if mode in ("lint", "full"):
                rejections = lint_screen(base_dfg, patched_dfg)
                if rejections:
                    registry.inc("analyze.screen.reject")
                    return RepairVerdict(
                        status="static_reject",
                        seeds=seeds,
                        cycles=cycles,
                        detail="; ".join(r.message for r in rejections),
                        provenance="static_reject",
                    )
        return None

    def verify_source(
        self,
        patched_source: str,
        seeds: Sequence[int],
        cycles: Optional[int] = None,
        base: tuple = (None, None),
    ) -> RepairVerdict:
        """Compile + simulate + check ``patched_source`` on every seed.

        The first seed is simulated and checked on its own -- most wrong
        candidates already fail there, and that path must stay one
        simulation + one check.  Only when it passes are the remaining
        seeds simulated and their traces pushed through the lowered
        checker in **one batch pass** (:meth:`check_batch`), paying the
        per-assertion dispatch once for the rest of the batch -- and, for
        attempt-tensor assertions, stacking the per-seed columns into one
        padded (seed x cycle) grid so each assertion is resolved for all
        remaining seeds in a single 2-D numpy evaluation.  (With many
        verification seeds this trades away the old early exit on a
        *middle* seed's assertion failure -- a candidate that already
        survived seed one rarely fails later, and the default is two
        seeds, so the batch is the better default.)  The
        verdict is identical to the historical seed-by-seed loop --
        failures are attributed to the first failing seed in seed order, a
        simulation error on a later seed still loses to an assertion
        failure on an earlier one, and ``exercised`` accumulates over
        exactly the seeds the old loop would have checked -- so cached
        verdicts stay valid.
        """
        seeds = tuple(seeds)
        cycles = self.config.cycles if cycles is None else cycles
        base_compiled, base_checker = base
        compiled = None
        with phase("verify.compile"):
            if self.artifacts is not None:
                # Candidates are one-shot: read the disk tier through but
                # never write to it (only base designs persist, in
                # :meth:`_base_artifacts`).
                design, first_error = self.artifacts.elaborate_source(
                    patched_source, persist=False
                )
                if design is None:
                    return RepairVerdict(
                        status="compile_fail", seeds=seeds, cycles=cycles,
                        detail=first_error,
                    )
                # Lowered via the artifact cache (LRU hit for repeat
                # candidates, incremental relowering against the case's
                # buggy base otherwise); ``compiled`` stays None when the
                # compiled backend rejects the design, and the Simulator
                # factory falls back exactly as it always has.
                compiled = self.artifacts.compiled_design(design, base=base_compiled)
                try:
                    checker = self.artifacts.checker(
                        design, backend=self.config.checker_backend, base=base_checker
                    )
                except CompileError:
                    checker = self.artifacts.checker(
                        design, backend="auto", base=base_checker
                    )
            else:
                result = compile_source(patched_source)
                if not result.ok or result.design is None:
                    first_error = (
                        result.errors[0].render() if result.errors else "compilation failed"
                    )
                    return RepairVerdict(
                        status="compile_fail", seeds=seeds, cycles=cycles,
                        detail=first_error,
                    )
                design = result.design
                # Lowered once per patched design, shared by every stimulus seed.
                try:
                    checker = CheckerBackend(design, backend=self.config.checker_backend)
                except CompileError:
                    # Only the strict "compiled" backend can raise (an
                    # assertion the lowering rejects).  Verification must
                    # yield a verdict, not an exception that aborts a whole
                    # eval run, and "auto" is outcome-identical, so degrade
                    # to the per-assertion fallback.
                    checker = CheckerBackend(design, backend="auto")
        def simulate(seed: int):
            with phase("verify.simulate"):
                stimulus = StimulusGenerator(design, seed=seed).mixed_stimulus(
                    random_cycles=cycles, reset_cycles=self.config.reset_cycles
                )
                # Column recording streams per-signal (value, xmask) change
                # events into the trace while simulating, so the vectorised
                # checker's columnar view costs O(changes) per seed and the
                # trace never needs to materialise per-cycle dicts; each
                # candidate's columns are then built once per trace inside
                # the batched checking pass.
                options = SimulatorOptions(record_columns=True)
                return Simulator(design, options, compiled=compiled).run(stimulus.vectors)

        exercised = False

        def failure_verdict(seed: int, report) -> RepairVerdict:
            first = report.first_failure()
            return RepairVerdict(
                status="assertion_fail",
                seeds=seeds,
                cycles=cycles,
                failing_assertions=report.failed_assertions,
                failing_seed=seed,
                first_failure_cycle=first.fail_cycle if first else None,
                exercised=exercised,
                detail=first.render() if first else "",
            )

        # First seed alone: the common assertion_fail verdict exits here
        # after exactly one simulation and one check.
        try:
            first_trace = simulate(seeds[0]) if seeds else None
        except SimulationError as exc:
            return RepairVerdict(
                status="sim_error", seeds=seeds, cycles=cycles,
                failing_seed=seeds[0], detail=str(exc),
            )
        if first_trace is not None:
            with phase("verify.check"):
                report = checker.check(first_trace)
            exercised = any(
                outcome.antecedent_matches > 0 for outcome in report.outcomes.values()
            )
            if not report.passed:
                return failure_verdict(seeds[0], report)

        # Remaining seeds: simulate, then one batched checking pass.
        simulated: list[tuple[int, object]] = []
        sim_failure: Optional[tuple[int, str]] = None
        for seed in seeds[1:]:
            try:
                simulated.append((seed, simulate(seed)))
            except SimulationError as exc:
                sim_failure = (seed, str(exc))
                break
        with phase("verify.check"):
            reports = checker.check_batch([trace for _, trace in simulated])
        for (seed, _), report in zip(simulated, reports):
            exercised = exercised or any(
                outcome.antecedent_matches > 0 for outcome in report.outcomes.values()
            )
            if not report.passed:
                return failure_verdict(seed, report)
        if sim_failure is not None:
            return RepairVerdict(
                status="sim_error", seeds=seeds, cycles=cycles,
                failing_seed=sim_failure[0], detail=sim_failure[1],
            )
        return RepairVerdict(status="pass", seeds=seeds, cycles=cycles, exercised=exercised)
