"""``python -m repro.eval``: the end-to-end repair-verification benchmark.

Runs the complete loop on one command line:

1. generate the corpus and run the three augmentation stages
   (``PipelineConfig.small()`` by default, ``--design-count N`` for the
   benchmark-scale configuration),
2. train an AssertSolver policy up to ``--stage`` (pretrain + SFT by
   default, ``--stage dpo`` for the full recipe, ``--stage base`` for the
   untuned baseline),
3. evaluate it on the held-out ``sva_eval_machine`` split with semantic
   verification on fresh stimulus seeds,
4. write ``eval_summary.json``, ``eval_cases.jsonl`` and
   ``eval_split.jsonl`` into ``--output-dir``.

The report is identical for any ``--workers`` value and for cold or warm
``--cache-dir`` state.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.dataaug.pipeline import DataAugmentationPipeline, PipelineConfig
from repro.eval.cache import VerdictCache
from repro.eval.harness import EvalConfig, EvalHarness
from repro.eval.reports import write_reports
from repro.eval.verifier import SemanticVerifier
from repro.model.assertsolver_model import AssertSolverModel
from repro.obs import (
    MetricsRegistry,
    Tracer,
    resolve_trace_path,
    scoped_registry,
    set_tracer,
    write_trace,
)
from repro.runtime import default_workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--seed", type=int, default=2025, help="pipeline + evaluation seed")
    parser.add_argument(
        "--design-count",
        type=int,
        default=0,
        help="corpus size; 0 (default) uses the small test-sized configuration",
    )
    parser.add_argument(
        "--stage",
        choices=("base", "sft", "dpo"),
        default="sft",
        help="how far to train the policy before evaluating",
    )
    parser.add_argument("--ks", type=int, nargs="+", default=[1, 5], help="report pass@k for these k")
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help=(
            "worker processes for the pipeline stages and verification "
            "(default: detected cores, capped; override with REPRO_WORKERS)"
        ),
    )
    parser.add_argument(
        "--verification-seeds", type=int, default=2, help="independent stimulus seeds per candidate"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=Path("eval_out"), help="where the reports are written"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="verdict cache directory (re-runs become incremental); omit to disable",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help=(
            "write a JSONL trace of the whole run (pipeline + eval) here; "
            "REPRO_TRACE=<path> is the env fallback.  Inspect it with "
            "'python -m repro.obs summarize <path>'"
        ),
    )
    return parser


def train_model(stage: str, datasets, seed: int, cache_dir=None) -> AssertSolverModel:
    """Train the policy up to the requested stage.

    With ``cache_dir``, the DPO stage's challenging-case mining shares the
    evaluation verdict cache, so repeat runs skip re-simulating responses.
    """
    model = AssertSolverModel(seed=seed)
    if stage == "base":
        return model
    model.pretrain(datasets.verilog_pt)
    model.supervised_finetune(datasets.sva_bug_train, datasets.verilog_bug)
    if stage == "dpo":
        verifier = None
        if cache_dir is not None:
            verifier = SemanticVerifier(cache=VerdictCache(cache_dir))
        model.learn_from_errors(datasets.sva_bug_train, verifier=verifier)
    return model


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = resolve_trace_path(args.trace)
    if trace_path is None:
        return _run(args, tracer=None)
    # One tracer and one metrics registry span the whole run (pipeline,
    # training, eval), written to a single trace file at the end.  The
    # components are handed the tracer explicitly so neither resolves
    # REPRO_TRACE itself and double-writes the same path.
    tracer = Tracer()
    previous_tracer = set_tracer(tracer)
    with scoped_registry(MetricsRegistry()) as registry:
        try:
            code = _run(args, tracer=tracer)
        finally:
            set_tracer(previous_tracer)
            write_trace(trace_path, tracer, metrics=registry, meta={"kind": "eval_cli"})
            print(f"wrote trace: {trace_path}", file=sys.stderr)
    return code


def _run(args, tracer) -> int:
    if args.design_count > 0:
        pipeline_config = PipelineConfig.default(
            seed=args.seed, design_count=args.design_count, workers=args.workers
        )
    else:
        pipeline_config = PipelineConfig.small(seed=args.seed, workers=args.workers)

    started = time.perf_counter()
    datasets = DataAugmentationPipeline(pipeline_config, tracer=tracer).run()
    print(
        f"pipeline: {datasets.statistics.sva_bug_entries} SVA-Bug entries, "
        f"{len(datasets.sva_eval_machine)} held out for SVA-Eval-Machine "
        f"({time.perf_counter() - started:.1f}s)"
    )
    if not datasets.sva_eval_machine:
        print("error: the held-out split is empty; increase --design-count", file=sys.stderr)
        return 1

    started = time.perf_counter()
    model = train_model(args.stage, datasets, seed=args.seed, cache_dir=args.cache_dir)
    print(f"model: trained to stage '{model.stage.value}' ({time.perf_counter() - started:.1f}s)")

    config = EvalConfig(
        seed=args.seed,
        ks=tuple(sorted(set(args.ks))),
        verification_seeds=args.verification_seeds,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    started = time.perf_counter()
    report = EvalHarness(config, tracer=tracer).run(model, datasets.sva_eval_machine)
    elapsed = time.perf_counter() - started

    paths = write_reports(report, args.output_dir, split=datasets.sva_eval_machine)
    summary = report.summary()
    rates = "  ".join(
        f"{key}={summary[key]:.3f}" for key in sorted(summary) if key.startswith("pass@")
    )
    print(
        f"eval: {summary['cases']} cases, {summary['candidates_verified']} candidates verified "
        f"({elapsed:.1f}s, cache {report.cache_hits} hits / {report.cache_misses} misses"
        f" / {report.cache_corrupt} corrupt)"
    )
    print(f"      {rates}")
    print(f"      verdicts: {json.dumps(summary['verdicts'])}")
    for label, path in paths.items():
        print(f"wrote {label}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
