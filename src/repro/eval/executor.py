"""Sharded execution of verification jobs.

A :class:`VerificationJob` is one evaluation case with its ranked candidate
fixes -- everything a worker needs, as plain picklable data.  Jobs are
independent, every seed is carried inside the job, and the fan-out is the
shared :func:`repro.runtime.run_jobs` executor (submission-order merging),
so the output is bit-identical for any worker count -- the same determinism
contract every stage of the pipeline runs under.

The per-fix verdict cache stays *inside* the worker (each fix of a job can
hit or miss independently); the runtime's job-level result cache is the
wrong granularity here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.eval.cache import VerdictCache
from repro.eval.verifier import CandidateFix, RepairVerdict, SemanticVerifier, VerifierConfig
from repro.obs import annotate
from repro.runtime import FaultPlan, JobFailure, run_jobs


@dataclass(frozen=True)
class VerificationJob:
    """One case's worth of verification work."""

    case_name: str
    buggy_source: str
    fixes: tuple[CandidateFix, ...]
    seeds: tuple[int, ...]
    cycles: int = 48
    #: Assertion-checker backend each worker verifies with (outcome-identical
    #: across backends; "interp" forces the differential oracle).
    checker_backend: str = "auto"
    #: Static screening mode (see :class:`~repro.eval.verifier.VerifierConfig`):
    #: "off" | "cone" | "lint" | "full".
    static_screen: str = "off"


@dataclass
class ShardResult:
    """Verdicts for one job plus the worker's cache traffic."""

    case_name: str
    verdicts: list[RepairVerdict] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Corrupt on-disk entries the worker's verdict cache hit (telemetry
    #: only -- never part of the report JSON, which must stay byte-identical
    #: whatever the cache state).
    cache_corrupt: int = 0


def _run_job(job: VerificationJob, context) -> ShardResult:
    """Worker function: verify one job (module-level so it pickles)."""
    cache_dir, artifact_dir, artifact_mode = context
    annotate(case=job.case_name, fixes=len(job.fixes))
    cache = VerdictCache(cache_dir) if cache_dir else None
    artifacts = None
    if artifact_mode != "off":
        # One store per worker process (and per disk tier), shared across
        # every job the worker handles: its LRU keeps each case's base
        # artifacts warm, and the optional disk tier shares elaborated
        # designs with every other worker.
        from repro.artifacts import process_store

        artifacts = process_store(artifact_dir)
    verifier = SemanticVerifier(
        config=VerifierConfig(
            cycles=job.cycles,
            checker_backend=job.checker_backend,
            artifact_mode=artifact_mode,
            static_screen=job.static_screen,
        ),
        cache=cache,
        artifacts=artifacts,
    )
    result = ShardResult(case_name=job.case_name)
    for fix in job.fixes:
        result.verdicts.append(verifier.verify(job.buggy_source, fix, job.seeds))
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
        result.cache_corrupt = cache.corrupt
    return result


def _infra_shard(job: VerificationJob, failure: JobFailure) -> ShardResult:
    """A quarantined job's stand-in shard: one ``infra_error`` verdict per fix.

    ``infra_error`` means the harness infrastructure failed (worker crash,
    hang, unexpected exception), not that the repair failed verification --
    scoring excludes these cases from pass@k denominators.
    """
    detail = f"{failure.exception_type}: {failure.message} (phase={failure.phase})"
    shard = ShardResult(case_name=job.case_name)
    shard.verdicts = [
        RepairVerdict(
            status="infra_error", seeds=job.seeds, cycles=job.cycles, detail=detail
        )
        for _ in job.fixes
    ]
    return shard


def run_verification_jobs(
    jobs: list[VerificationJob],
    workers: int = 1,
    cache_dir: Optional[Path | str] = None,
    on_error: str = "raise",
    job_timeout: Optional[float] = None,
    max_attempts: int = 1,
    fault_plan: Optional[FaultPlan] = None,
    tracer=None,
    artifact_dir: Optional[Path | str] = None,
    artifact_mode: str = "incremental",
) -> list[ShardResult]:
    """Verify every job through the shared runtime executor.

    Returns one :class:`ShardResult` per job, in job order.  With
    ``on_error="quarantine"``, a job whose worker fails (after
    ``max_attempts`` executions, or by exceeding ``job_timeout``) yields a
    shard of ``infra_error`` verdicts instead of aborting the run.

    ``artifact_mode`` ("incremental" | "off") selects whether workers route
    compilation through the per-process compiled-artifact cache;
    ``artifact_dir`` adds its shared on-disk elaboration tier.  Neither
    affects verdicts -- incremental relowering is byte-identical to full
    recompilation for any worker count or cache state.
    """
    cache_arg = str(cache_dir) if cache_dir is not None else None
    artifact_arg = str(artifact_dir) if artifact_dir is not None else None
    results = run_jobs(
        jobs,
        _run_job,
        workers=workers,
        context=(cache_arg, artifact_arg, artifact_mode),
        on_error=on_error,
        timeout=job_timeout,
        max_attempts=max_attempts,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    if on_error != "quarantine":
        return results
    return [
        outcome.result if outcome.ok else _infra_shard(job, outcome.failure)
        for job, outcome in zip(jobs, results)
    ]
