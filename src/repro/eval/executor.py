"""Sharded execution of verification jobs.

A :class:`VerificationJob` is one evaluation case with its ranked candidate
fixes -- everything a worker needs, as plain picklable data.  Jobs are
independent, every seed is carried inside the job, and results are merged in
submission order, so the output is bit-identical for any worker count (the
same per-case determinism discipline as the Stage-2 fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Optional

from repro.eval.cache import VerdictCache
from repro.eval.verifier import CandidateFix, RepairVerdict, SemanticVerifier, VerifierConfig


@dataclass(frozen=True)
class VerificationJob:
    """One case's worth of verification work."""

    case_name: str
    buggy_source: str
    fixes: tuple[CandidateFix, ...]
    seeds: tuple[int, ...]
    cycles: int = 48
    #: Assertion-checker backend each worker verifies with (outcome-identical
    #: across backends; "interp" forces the differential oracle).
    checker_backend: str = "auto"


@dataclass
class ShardResult:
    """Verdicts for one job plus the worker's cache traffic."""

    case_name: str
    verdicts: list[RepairVerdict] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0


def _run_job(job: VerificationJob, cache_dir: Optional[str]) -> ShardResult:
    cache = VerdictCache(cache_dir) if cache_dir else None
    verifier = SemanticVerifier(
        config=VerifierConfig(cycles=job.cycles, checker_backend=job.checker_backend),
        cache=cache,
    )
    result = ShardResult(case_name=job.case_name)
    for fix in job.fixes:
        result.verdicts.append(verifier.verify(job.buggy_source, fix, job.seeds))
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
    return result


def _run_job_entry(payload: tuple[VerificationJob, Optional[str]]) -> ShardResult:
    """Pool entry point (module-level so it pickles)."""
    job, cache_dir = payload
    return _run_job(job, cache_dir)


def run_verification_jobs(
    jobs: list[VerificationJob],
    workers: int = 1,
    cache_dir: Optional[Path | str] = None,
) -> list[ShardResult]:
    """Verify every job, fanning out across a process pool when asked.

    Returns one :class:`ShardResult` per job, in job order.
    """
    cache_arg = str(cache_dir) if cache_dir is not None else None
    workers = min(workers, len(jobs)) if jobs else 0
    if workers <= 1:
        return [_run_job(job, cache_arg) for job in jobs]
    context = get_context()
    payloads = [(job, cache_arg) for job in jobs]
    with context.Pool(processes=workers) as pool:
        return list(pool.imap(_run_job_entry, payloads))
