"""End-to-end repair verification and the SVA-Eval-Machine benchmark.

This package is the right-hand side of the paper's Fig. 2: a proposed repair
only counts when the patched design re-elaborates, re-simulates on *fresh*
stimulus, and clears every assertion.  The pieces:

* :mod:`repro.eval.verifier` -- the semantic verifier: apply a candidate fix,
  re-run parse -> elaborate -> compiled-simulate -> SVA-check, return a
  structured :class:`~repro.eval.verifier.RepairVerdict`;
* :mod:`repro.eval.cache` -- a content-addressed on-disk verdict cache keyed
  by (source, fix, stimulus seeds), making re-runs incremental;
* :mod:`repro.eval.executor` -- sharded fan-out over verification jobs via
  the shared :mod:`repro.runtime` executor, worker-count invariant by
  construction;
* :mod:`repro.eval.harness` -- runs a repair engine over the held-out
  ``sva_eval_machine`` split and computes pass@1 / pass@k with per-taxonomy
  and per-template-family breakdowns;
* :mod:`repro.eval.reports` -- per-case JSONL and a machine-readable summary
  JSON (schema ``repro_eval/v1``);
* ``python -m repro.eval`` -- the end-to-end CLI (pipeline -> train ->
  evaluate -> report).
"""

from repro.eval.cache import VerdictCache, verdict_key
from repro.eval.executor import VerificationJob, run_verification_jobs
from repro.eval.harness import CaseResult, EvalConfig, EvalHarness, EvalReport
from repro.eval.reports import write_reports
from repro.eval.verifier import (
    CandidateFix,
    RepairVerdict,
    SemanticVerifier,
    VerifierConfig,
    derive_verification_seeds,
)

__all__ = [
    "CandidateFix",
    "CaseResult",
    "EvalConfig",
    "EvalHarness",
    "EvalReport",
    "RepairVerdict",
    "SemanticVerifier",
    "VerdictCache",
    "VerificationJob",
    "VerifierConfig",
    "derive_verification_seeds",
    "run_verification_jobs",
    "verdict_key",
    "write_reports",
]
